#![warn(missing_docs)]
//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no registry access, so this shim implements the
//! subset of the rayon 1.x API the workspace uses — the scoped fork-join
//! core that `cinct::engine::QueryEngine` parallelizes batches with:
//!
//! * [`scope`] / [`Scope::spawn`], mapped onto [`std::thread::scope`];
//! * [`current_num_threads`], mapped onto
//!   [`std::thread::available_parallelism`].
//!
//! Differences from the real crate: there is no global work-stealing pool —
//! every `spawn` is an OS thread for the duration of the scope. Callers
//! therefore spawn **one task per chunk of work** (at most one per desired
//! thread), not one per item; `QueryEngine` already chunks this way, which
//! also gives identical scheduling under the real crate. Swap the
//! workspace `rayon` path dependency for the registry crate when network
//! access is available.

use std::thread;

/// A scope for spawning parallel tasks that may borrow from the caller's
/// stack. Created by [`scope`]; tasks may spawn further tasks through the
/// reference they receive.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Run `body` in parallel with the caller. The task receives a scope
    /// reference so it can spawn nested tasks, mirroring rayon's API.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let nested = Scope { inner };
            body(&nested);
        });
    }
}

/// Create a fork-join scope: tasks spawned inside all complete before
/// `scope` returns. Panics in tasks propagate to the caller (via the
/// joining `std::thread::scope`), as with the real crate.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| {
        let wrapper = Scope { inner: s };
        op(&wrapper)
    })
}

/// Number of threads a parallel scope can usefully occupy — the machine's
/// available parallelism (the real crate reports its global pool size).
///
/// Resolved **once per process** and cached: `available_parallelism` is a
/// syscall, and callers on serving hot paths (`QueryEngine::run`, the
/// `cinct serve` request loop) consult the knob per batch/request. The
/// real rayon crate sizes its global pool once at startup, so caching
/// also matches upstream semantics.
pub fn current_num_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Resolve a user-facing thread-count knob under the workspace's shared
/// convention: **`0` means "auto"** (the machine's available parallelism,
/// [`current_num_threads`]); any other value is taken literally. Every
/// thread knob in the workspace — `CinctBuilder::threads`,
/// `QueryEngine::parallel`, `ShardedBuilder::threads`, the succinct
/// parallel builders — routes through this so the convention cannot
/// drift between layers.
pub fn resolve_threads(n: usize) -> usize {
    if n == 0 {
        current_num_threads()
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        let total: usize = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            42
        });
        assert_eq!(total, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn tasks_can_borrow_and_write_disjoint_chunks() {
        let mut out = vec![0usize; 100];
        scope(|s| {
            for (i, chunk) in out.chunks_mut(30).enumerate() {
                s.spawn(move |_| {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 1000 + k;
                    }
                });
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i / 30) * 1000 + i % 30);
        }
    }

    #[test]
    fn nested_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn zero_resolves_to_auto() {
        assert_eq!(resolve_threads(0), current_num_threads());
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }
}
