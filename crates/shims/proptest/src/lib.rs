#![warn(missing_docs)]
//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this shim implements the
//! subset of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] /
//!   [`Strategy::prop_flat_map`], implemented for integer ranges, tuples of
//!   strategies, [`Just`], and the combinators below;
//! * [`collection::vec`], [`bool::weighted`], [`sample::select`],
//!   [`arbitrary::any`];
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//!   [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Differences from the real crate: failing cases are **not shrunk** (the
//! failing input is printed as generated), case seeds are deterministic per
//! test function rather than drawn from an entropy source, and no failure
//! persistence file is written. Swap the workspace `proptest` path
//! dependency for the registry crate when network access is available.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A value generator. Generation-only: no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generate an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 != 0
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// Strategy generating any value of `T` (returned by [`any`]).
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` (returned by [`vec`]).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy for biased booleans (returned by [`weighted`]).
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.0
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Weighted(p)
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy choosing uniformly from a fixed list (returned by [`select`]).
    #[derive(Clone, Debug)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select with no options");
        Select(options)
    }
}

/// Per-test-function configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error carried out of a failing property body (via `prop_assert*`).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything the property tests import.
pub mod prelude {
    /// Alias so `prop::collection::vec` / `prop::sample::select` paths work.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert a condition inside a property body; failure aborts only the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Deterministic per-function seed stream.
            let mut fn_seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                fn_seed = (fn_seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(fn_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {case}/{}: {e}", stringify!($name), config.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..=6), v in prop::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn combinators(x in (1u32..5).prop_flat_map(|n| prop::collection::vec(0u32..n, 1..4)), s in prop::sample::select(vec![15usize, 31, 63])) {
            prop_assert!(!x.is_empty());
            prop_assert!([15, 31, 63].contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "property failing_case failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn failing_case(x in 0u32..2) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        failing_case();
    }
}
