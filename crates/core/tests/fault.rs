//! The crash matrix: drive a simulated crash through **every**
//! fault-injection point in `save_dir` and the WAL append path, reopen,
//! and assert the directory holds exactly the pre-save or the post-save
//! corpus — never a mix, never an unopenable state.
//!
//! Plus the rest of the failure menagerie: fsync/rename failures, bit
//! rot with strict vs resilient opens, quarantine semantics, and the
//! `*.tmp` sweep.

use cinct::faultio::{self, Fault};
use cinct::store::MANIFEST_FILE;
use cinct::{Durability, OpenMode, Path, PathQuery, QueryError, ShardedBuilder, ShardedCinct, Wal};

fn paper_trajs() -> Vec<Vec<u32>> {
    vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cinct-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build_sharded() -> ShardedCinct {
    ShardedBuilder::new()
        .shards(3)
        .locate_sampling(2)
        .build(&paper_trajs(), 6)
}

/// Everything observable about a corpus, for exact old-vs-new compares.
fn fingerprint(c: &ShardedCinct) -> (usize, Vec<Vec<u32>>, usize, usize) {
    let trajs: Vec<Vec<u32>> = (0..c.num_trajectories()).map(|g| c.trajectory(g)).collect();
    (
        c.num_trajectories(),
        trajs,
        c.count(Path::new(&[0, 1])),
        c.count(Path::new(&[1, 2])),
    )
}

/// Fresh "old saved, new in memory" state for one crash-matrix run.
/// Deterministic: every call produces byte-identical directories, so the
/// injection-point count from the Observe run holds for every crash run.
fn setup(tag: &str, run: usize) -> (std::path::PathBuf, ShardedCinct, ShardedCinct) {
    let dir = scratch(&format!("{tag}-{run}"));
    let old = build_sharded();
    old.save_dir(&dir).unwrap();
    let mut new = old.clone();
    new.append_batch(&[vec![1, 2, 5], vec![0, 1]]).unwrap();
    // Compaction rewrites every shard file, maximizing injection points.
    new.compact(2).unwrap();
    (dir, old, new)
}

#[test]
fn crash_matrix_save_dir_yields_exactly_old_or_new() {
    // Enumerate the injection points of this save shape once.
    let (dir, _, new) = setup("save-observe", 0);
    faultio::arm(Fault::Observe);
    new.save_dir(&dir).unwrap();
    let total_ops = faultio::disarm().unwrap().ops;
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(
        total_ops >= 8,
        "suspiciously few injection points: {total_ops}"
    );

    for torn in [false, true] {
        let mut saw_old = false;
        let mut saw_new = false;
        for at in 0..total_ops {
            let (dir, old, new) = setup("save-crash", at * 2 + torn as usize);
            let old_fp = fingerprint(&old);
            let new_fp = fingerprint(&new);
            faultio::arm(Fault::CrashAt { at, torn });
            let err = new.save_dir(&dir);
            let report = faultio::disarm().unwrap();
            assert!(err.is_err(), "crash at op {at} did not surface");
            assert!(report.fired, "op {at} never reached (total {total_ops})");
            // The reopened directory is exactly one of the two corpora.
            let back = ShardedCinct::open_dir(&dir)
                .unwrap_or_else(|e| panic!("unopenable after crash at op {at} (torn={torn}): {e}"));
            let got = fingerprint(&back);
            if got == old_fp {
                saw_old = true;
            } else if got == new_fp {
                saw_new = true;
            } else {
                panic!("crash at op {at} (torn={torn}) left a mixed corpus");
            }
            // The open also swept every crashed .tmp sibling.
            for entry in std::fs::read_dir(&dir).unwrap().flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                assert!(!name.ends_with(".tmp"), "{name} survived the sweep");
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
        // The commit point partitions the matrix: early crashes keep the
        // old corpus, a crash after the manifest rename keeps the new.
        assert!(
            saw_old,
            "no crash point preserved the old corpus (torn={torn})"
        );
        assert!(
            saw_new,
            "no crash point yielded the new corpus (torn={torn})"
        );
    }
}

#[test]
fn crash_matrix_wal_append_recovers_a_clean_acked_prefix() {
    let batches: Vec<Vec<Vec<u32>>> = vec![
        vec![vec![0, 1, 2], vec![3]],
        vec![vec![4, 5]],
        vec![vec![0, 3], vec![1, 2], vec![2, 1]],
    ];
    // Observe one full open + append run.
    let dir = scratch("wal-observe");
    faultio::arm(Fault::Observe);
    let (mut wal, _) = Wal::open(&dir, Durability::Durable).unwrap();
    for (i, b) in batches.iter().enumerate() {
        wal.append(&format!("k{i}"), b).unwrap();
    }
    let total_ops = faultio::disarm().unwrap().ops;
    drop(wal);
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(
        total_ops >= 6,
        "suspiciously few WAL injection points: {total_ops}"
    );

    for torn in [false, true] {
        for at in 0..total_ops {
            let dir = scratch(&format!("wal-crash-{at}-{torn}"));
            faultio::arm(Fault::CrashAt { at, torn });
            let mut acked = 0usize;
            if let Ok((mut wal, _)) = Wal::open(&dir, Durability::Durable) {
                for (i, b) in batches.iter().enumerate() {
                    match wal.append(&format!("k{i}"), b) {
                        Ok(_) => acked += 1,
                        Err(_) => break,
                    }
                }
            }
            faultio::disarm().unwrap();
            // Recovery: an intact prefix, covering at least every acked
            // append (a crashed-after-write, pre-ack record may ride
            // along — idempotency keys make replaying it harmless).
            let (_, records) = Wal::open(&dir, Durability::Durable)
                .unwrap_or_else(|e| panic!("WAL unopenable after crash at op {at}: {e}"));
            assert!(
                records.len() >= acked,
                "crash at op {at} (torn={torn}): {acked} acked but only {} recovered",
                records.len()
            );
            for (i, rec) in records.iter().enumerate() {
                assert_eq!(rec.key, format!("k{i}"), "crash at op {at}");
                assert_eq!(rec.batch, batches[i], "crash at op {at}");
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn manifest_wal_stamp_skips_absorbed_replay_after_crashed_retire() {
    // The save/retire crash window: `save_dir_at` renames the manifest,
    // then the process dies before the WAL retire. The absorbed records
    // are still in the active segment but the manifest already holds
    // them — replaying would apply every one twice.
    let dir = scratch("absorbed-replay");
    let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
    let mut corpus = build_sharded();
    for (key, batch) in [("k0", vec![vec![1u32, 2, 5]]), ("k1", vec![vec![0u32, 1]])] {
        wal.append(key, &batch).unwrap();
        corpus.append_batch(&batch).unwrap();
    }
    let position = wal.next_seq();
    corpus
        .save_dir_at(&dir, Durability::Durable, position)
        .unwrap();
    drop(wal); // crash before `retire()`
    let (wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
    assert!(
        replay.is_empty(),
        "{} absorbed record(s) replayed",
        replay.len()
    );
    assert_eq!(wal.pending(), 0);
    assert_eq!(
        wal.next_seq(),
        position,
        "positions must survive the filter"
    );
    let back = ShardedCinct::open_dir(&dir).unwrap();
    assert_eq!(fingerprint(&back), fingerprint(&corpus));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_wal_stamp_filters_replay_to_the_unabsorbed_suffix() {
    // A manifest that absorbed only a prefix of the log (a follower
    // snapshot cut mid-stream): replay resumes exactly at the stamp.
    let dir = scratch("absorbed-partial");
    let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
    let batches: Vec<Vec<Vec<u32>>> = vec![vec![vec![1, 2, 5]], vec![vec![0, 1]], vec![vec![0, 3]]];
    let mut corpus = build_sharded();
    for (i, batch) in batches.iter().enumerate() {
        wal.append(&format!("k{i}"), batch).unwrap();
    }
    corpus.append_batch(&batches[0]).unwrap();
    corpus.append_batch(&batches[1]).unwrap();
    corpus.save_dir_at(&dir, Durability::Durable, 2).unwrap();
    drop(wal);
    let (wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
    assert_eq!(replay.len(), 1, "exactly the unabsorbed suffix replays");
    assert_eq!(replay[0].seq, 2);
    assert_eq!(replay[0].key, "k2");
    assert_eq!(replay[0].batch, batches[2]);
    assert_eq!(wal.pending(), 1);
    assert_eq!(wal.next_seq(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_ahead_of_the_log_rebases_instead_of_replaying_stale_history() {
    // The bootstrap crash window: a snapshot install commits a manifest
    // absorbed through seq 42, then the process dies before
    // `Wal::create_at` re-bases the log. The retained history predates
    // the installed corpus — replaying it would resurrect overwritten
    // state, so the open re-bases at the manifest's position instead.
    let dir = scratch("manifest-ahead");
    let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
    wal.append("stale", &[vec![9u32, 9]]).unwrap();
    let active = wal.path().to_path_buf();
    drop(wal);
    build_sharded()
        .save_dir_at(&dir, Durability::Durable, 42)
        .unwrap();
    let (wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
    assert!(replay.is_empty(), "stale pre-snapshot history replayed");
    assert_eq!((wal.base_seq(), wal.next_seq()), (42, 42));
    drop(wal);
    // Same window, fresh-file shape: no active segment survived at all.
    std::fs::remove_file(&active).unwrap();
    let (wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
    assert!(replay.is_empty());
    assert_eq!((wal.base_seq(), wal.next_seq()), (42, 42));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsync_failure_fails_the_save_and_keeps_the_old_corpus() {
    let (dir, old, new) = setup("fsync", 9000);
    faultio::arm(Fault::FsyncError);
    assert!(new.save_dir(&dir).is_err());
    assert!(faultio::disarm().unwrap().fired);
    let back = ShardedCinct::open_dir(&dir).unwrap();
    assert_eq!(fingerprint(&back), fingerprint(&old));
    // The Fast durability knob skips fsync entirely: the same fault plan
    // never fires and the save lands.
    faultio::arm(Fault::FsyncError);
    new.save_dir_with(&dir, Durability::Fast).unwrap();
    assert!(!faultio::disarm().unwrap().fired);
    let back = ShardedCinct::open_dir(&dir).unwrap();
    assert_eq!(fingerprint(&back), fingerprint(&new));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rename_failure_fails_the_save_and_keeps_the_old_corpus() {
    let (dir, old, new) = setup("rename", 9001);
    faultio::arm(Fault::RenameError);
    assert!(new.save_dir(&dir).is_err());
    assert!(faultio::disarm().unwrap().fired);
    let back = ShardedCinct::open_dir(&dir).unwrap();
    assert_eq!(fingerprint(&back), fingerprint(&old));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Shard files currently in `dir`, sorted by shard slot.
fn shard_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            let n = p.file_name().unwrap().to_string_lossy().into_owned();
            n.starts_with("shard-") && n.ends_with(".cinct")
        })
        .collect();
    files.sort();
    files
}

#[test]
fn resilient_open_quarantines_a_bit_rotted_shard_and_serves_the_rest() {
    let dir = scratch("quarantine");
    let full = build_sharded();
    full.save_dir(&dir).unwrap();
    let victim = shard_files(&dir).remove(1);
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&victim, &bytes).unwrap();

    // Strict (the default) still fails fast.
    assert!(matches!(
        ShardedCinct::open_dir(&dir),
        Err(QueryError::CorruptIndex(_))
    ));

    let back = ShardedCinct::open_dir_with(&dir, OpenMode::Resilient).unwrap();
    assert!(back.is_degraded());
    assert_eq!(back.quarantined().len(), 1);
    let q = &back.quarantined()[0];
    assert_eq!(q.slot, 1);
    assert!(q.reason.contains("checksum"), "{}", q.reason);
    assert_eq!(q.trajectories, full.shard_globals(1).len());

    // The namespace is preserved; the quarantined IDs read as absent,
    // everything else answers exactly as before.
    assert_eq!(back.num_trajectories(), full.num_trajectories());
    let lost: Vec<usize> = full.shard_globals(1).iter().map(|&g| g as usize).collect();
    for g in 0..full.num_trajectories() {
        if lost.contains(&g) {
            assert!(!back.trajectory_available(g));
            assert!(matches!(
                back.try_trajectory(g),
                Err(QueryError::CorruptIndex(_))
            ));
        } else {
            assert!(back.trajectory_available(g));
            assert_eq!(back.try_trajectory(g).unwrap(), full.trajectory(g), "g={g}");
        }
    }
    // Counts equal brute force over the surviving trajectories.
    for probe in [vec![0u32], vec![0, 1], vec![1, 2]] {
        let expect: usize = (0..full.num_trajectories())
            .filter(|g| !lost.contains(g))
            .map(|g| {
                let t = full.trajectory(g);
                t.windows(probe.len()).filter(|w| *w == probe).count()
            })
            .sum();
        assert_eq!(back.count(Path::new(&probe)), expect, "probe {probe:?}");
    }
    // Occurrence listing still reports *global* IDs for loaded shards.
    for (g, _) in back.occurrences(Path::new(&[0])).unwrap().collect_sorted() {
        assert!(!lost.contains(&g));
    }

    // A degraded corpus refuses to persist or compact itself — that
    // would silently turn quarantine into deletion.
    let mut back = back;
    assert!(matches!(
        back.save_dir(&dir),
        Err(QueryError::InvalidInput(_))
    ));
    assert!(matches!(back.compact(2), Err(QueryError::InvalidInput(_))));
    // But appends still land: new IDs continue after the full namespace.
    let range = back.append_batch(&[vec![2, 1]]).unwrap();
    assert_eq!(range, 4..5);
    assert_eq!(back.try_trajectory(4).unwrap(), vec![2, 1]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resilient_open_quarantines_a_missing_shard_file() {
    let dir = scratch("quarantine-missing");
    build_sharded().save_dir(&dir).unwrap();
    std::fs::remove_file(shard_files(&dir).remove(0)).unwrap();
    let back = ShardedCinct::open_dir_with(&dir, OpenMode::Resilient).unwrap();
    assert!(back.is_degraded());
    assert_eq!(back.quarantined()[0].slot, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resilient_open_still_fails_on_manifest_damage() {
    // Without a trustworthy manifest there is nothing to resiliently
    // serve — manifest corruption stays fatal in both modes.
    let dir = scratch("manifest-fatal");
    build_sharded().save_dir(&dir).unwrap();
    let mpath = dir.join(MANIFEST_FILE);
    let mut bytes = std::fs::read(&mpath).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&mpath, &bytes).unwrap();
    assert!(ShardedCinct::open_dir_with(&dir, OpenMode::Resilient).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_dir_sweeps_crash_leftover_tmp_files() {
    let dir = scratch("sweep");
    build_sharded().save_dir(&dir).unwrap();
    std::fs::write(dir.join("shard-99999-dead.tmp"), b"half a save").unwrap();
    std::fs::write(dir.join("manifest.tmp"), b"half a manifest").unwrap();
    ShardedCinct::open_dir(&dir).unwrap();
    assert!(!dir.join("shard-99999-dead.tmp").exists());
    assert!(!dir.join("manifest.tmp").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}
