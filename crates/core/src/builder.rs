//! CiNCT index construction (paper §III-A steps 1–5) with per-phase
//! timings for the Fig. 16 construction-time breakdown.

use crate::index::{CinctIndex, SaSamples};
use crate::rml::{LabelingStrategy, Rml};
use cinct_bwt::{bwt_from_sa, suffix_array, CArray, TrajectoryString};
use cinct_fmindex::QueryError;
use cinct_succinct::{BitBuf, HuffmanWaveletTree, IntVec, RankBitVec, RrrBitVec};
use std::time::{Duration, Instant};

/// Wall-clock spent in each construction phase (paper Fig. 16 splits the
/// bars into `BWT`, `WT-build`, and `ET-graph-build`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ConstructionTimings {
    /// Suffix array + BWT.
    pub bwt: Duration,
    /// ET-graph construction, labeling, and `Z`-term computation — all
    /// operations the other FM-index variants do not need.
    pub et_graph_build: Duration,
    /// Wavelet-tree construction over the labeled BWT.
    pub wt_build: Duration,
}

impl ConstructionTimings {
    /// Total construction time.
    pub fn total(&self) -> Duration {
        self.bwt + self.et_graph_build + self.wt_build
    }
}

/// Configurable CiNCT construction.
#[derive(Clone, Copy, Debug)]
pub struct CinctBuilder {
    labeling: LabelingStrategy,
    block_size: usize,
    locate_sampling: Option<usize>,
}

impl Default for CinctBuilder {
    fn default() -> Self {
        Self {
            labeling: LabelingStrategy::BigramSorted,
            block_size: 63,
            locate_sampling: None,
        }
    }
}

impl CinctBuilder {
    /// Default configuration: bigram-sorted RML, `b = 63`, no locate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Labeling strategy (Fig. 14 ablation).
    pub fn labeling(mut self, strategy: LabelingStrategy) -> Self {
        self.labeling = strategy;
        self
    }

    /// RRR block size `b` — the paper's only parameter (§III-C2),
    /// evaluated at `b ∈ {15, 31, 63}`.
    pub fn block_size(mut self, b: usize) -> Self {
        self.block_size = b;
        self
    }

    /// Enable locate support with the given SA sampling rate (smaller =
    /// faster locate, more space).
    pub fn locate_sampling(mut self, rate: usize) -> Self {
        assert!(rate >= 1);
        self.locate_sampling = Some(rate);
        self
    }

    /// Build from raw trajectories.
    ///
    /// Construction trusts its input for speed; use
    /// [`CinctBuilder::try_build`] when the trajectories come from an
    /// untrusted source.
    pub fn build(self, trajectories: &[Vec<u32>], n_edges: usize) -> CinctIndex {
        self.build_timed(trajectories, n_edges).0
    }

    /// Validate that every edge ID lies in `0..n_edges` and that there is
    /// something to index, then build. Violations surface as
    /// [`QueryError::UnknownEdge`] / [`QueryError::InvalidInput`] instead
    /// of a panic (or silent corruption) deep inside construction.
    pub fn try_build(
        self,
        trajectories: &[Vec<u32>],
        n_edges: usize,
    ) -> Result<CinctIndex, QueryError> {
        if trajectories.is_empty() {
            return Err(QueryError::InvalidInput("no trajectories to index".into()));
        }
        // Empty trajectories are dropped during construction, which would
        // silently shift every trajectory ID the caller gets back from
        // locate/get — reject them up front instead.
        if let Some(i) = trajectories.iter().position(|t| t.is_empty()) {
            return Err(QueryError::InvalidInput(format!("trajectory {i} is empty")));
        }
        for t in trajectories {
            for &edge in t {
                if edge as usize >= n_edges {
                    return Err(QueryError::UnknownEdge { edge, n_edges });
                }
            }
        }
        Ok(self.build(trajectories, n_edges))
    }

    /// Build and report per-phase timings.
    pub fn build_timed(
        self,
        trajectories: &[Vec<u32>],
        n_edges: usize,
    ) -> (CinctIndex, ConstructionTimings) {
        let ts = TrajectoryString::build(trajectories, n_edges);
        self.build_from_trajectory_string(&ts, n_edges)
    }

    /// Build from a prepared trajectory string (lets callers share the
    /// string across several index builds, as the experiment harness does).
    pub fn build_from_trajectory_string(
        self,
        ts: &TrajectoryString,
        n_edges: usize,
    ) -> (CinctIndex, ConstructionTimings) {
        let mut timings = ConstructionTimings::default();

        // Steps 1–2: trajectory string → BWT.
        let t0 = Instant::now();
        let text = ts.text();
        let sigma = ts.sigma();
        let sa = suffix_array(text, sigma);
        let tbwt = bwt_from_sa(text, &sa);
        let c = CArray::new(text, sigma);
        timings.bwt = t0.elapsed();

        // Steps 3–4: ET-graph, RML, labeled BWT, Z terms.
        let t0 = Instant::now();
        let mut rml = Rml::from_text(text, sigma, self.labeling);
        let labeled = rml.label_bwt(&tbwt, &c);
        compute_z_terms(&mut rml, &tbwt, &labeled, &c);
        timings.et_graph_build = t0.elapsed();

        // Step 5: compressed wavelet tree.
        let t0 = Instant::now();
        let wt = HuffmanWaveletTree::<RrrBitVec>::with_params(&labeled, self.block_size);
        timings.wt_build = t0.elapsed();

        // Trajectory directory: the BWT row of each trajectory's closing `$`
        // is ISA[start of next unit], derived from the SA we already have.
        let n = text.len();
        let mut isa = vec![0u32; n];
        for (row, &pos) in sa.iter().enumerate() {
            isa[pos as usize] = row as u32;
        }
        let traj_rows: Vec<u32> = ts
            .starts()
            .iter()
            .enumerate()
            .map(|(k, &s)| {
                let end = ts
                    .starts()
                    .get(k + 1)
                    .map_or(n - 2, |&next| next as usize - 1);
                debug_assert_eq!(text[end], cinct_bwt::SEPARATOR);
                debug_assert!(end > s as usize);
                isa[end]
            })
            .collect();

        // Optional SA samples for locate.
        let samples = self.locate_sampling.map(|rate| {
            let mut marked = BitBuf::zeros(n);
            let mut rows: Vec<(u32, u64)> = Vec::with_capacity(n / rate + 1);
            for (row, &pos) in sa.iter().enumerate() {
                if (pos as usize).is_multiple_of(rate) {
                    marked.set(row, true);
                    rows.push((row as u32, pos as u64));
                }
            }
            let mut values = IntVec::with_capacity(IntVec::width_for(n as u64), rows.len());
            for &(_, pos) in &rows {
                values.push(pos);
            }
            SaSamples {
                marked: RankBitVec::new(marked),
                values,
                rate,
            }
        });

        let index = CinctIndex {
            c,
            labeled: wt,
            rml,
            traj_starts: ts.starts().to_vec(),
            traj_rows,
            samples,
            n_network_edges: n_edges,
        };
        (index, timings)
    }
}

/// Compute every correction term `Z_{w′w}` (paper Eq. (7)) in one linear
/// scan over the BWT: at each context-block boundary `j = C[w′]`, for each
/// out-edge `(w′, w)` with label `η`,
/// `Z = rank_η(φ(T_bwt), C[w′]) − rank_w(T_bwt, C[w′])`.
fn compute_z_terms(rml: &mut Rml, tbwt: &[u32], labeled: &[u32], c: &CArray) {
    let sigma = c.sigma();
    let max_label = labeled.iter().copied().max().unwrap_or(1) as usize;
    let mut label_counts = vec![0u64; max_label + 1];
    let mut sym_counts = vec![0u64; sigma];
    let mut zs: Vec<i64> = Vec::with_capacity(rml.graph().num_edges());
    let mut j = 0usize;
    for w_prime in 0..sigma as u32 {
        let boundary = c.get(w_prime);
        while j < boundary {
            label_counts[labeled[j] as usize] += 1;
            sym_counts[tbwt[j] as usize] += 1;
            j += 1;
        }
        let graph = rml.graph();
        let degree = graph.out_degree(w_prime);
        for k in 0..degree {
            let label = k as u32 + 1;
            let w = graph.decode(label, w_prime);
            zs.push(label_counts[label as usize] as i64 - sym_counts[w as usize] as i64);
        }
    }
    rml.graph_mut().attach_z_terms(&zs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct_bwt::bwt::bwt;

    fn paper_trajs() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
    }

    #[test]
    fn z_terms_satisfy_eq7() {
        let trajs = paper_trajs();
        let ts = TrajectoryString::build(&trajs, 6);
        let (_, tbwt) = bwt(ts.text(), ts.sigma());
        let c = CArray::new(ts.text(), ts.sigma());
        let idx = CinctBuilder::new().build(&trajs, 6);
        let labeled: Vec<u32> = (0..tbwt.len())
            .map(|j| {
                let w_prime = c.symbol_at(j);
                idx.rml()
                    .label(tbwt[j], w_prime)
                    .expect("transition exists")
            })
            .collect();
        for w_prime in 0..idx.sigma() as u32 {
            for (k, &w) in idx.rml().graph().out(w_prime).iter().enumerate() {
                let label = k as u32 + 1;
                let boundary = c.get(w_prime);
                let rank_label = labeled[..boundary].iter().filter(|&&l| l == label).count() as i64;
                let rank_sym = tbwt[..boundary].iter().filter(|&&s| s == w).count() as i64;
                assert_eq!(
                    idx.rml().graph().z_term(label, w_prime),
                    rank_label - rank_sym,
                    "Z[{w_prime}→{w}]"
                );
            }
        }
    }

    #[test]
    fn timings_cover_all_phases() {
        let (_, t) = CinctBuilder::new().build_timed(&paper_trajs(), 6);
        assert!(t.total() >= t.bwt);
        assert!(t.total() >= t.wt_build);
        assert!(t.total() >= t.et_graph_build);
    }

    #[test]
    fn builder_is_reusable_and_deterministic() {
        let b = CinctBuilder::new().block_size(31);
        let i1 = b.build(&paper_trajs(), 6);
        let i2 = b.build(&paper_trajs(), 6);
        assert_eq!(i1.core_size_in_bytes(), i2.core_size_in_bytes());
        assert_eq!(i1.path_range(&[0, 1]), i2.path_range(&[0, 1]));
    }

    #[test]
    #[should_panic(expected = "rate >= 1")]
    fn rejects_zero_sampling() {
        let _ = CinctBuilder::new().locate_sampling(0);
    }

    #[test]
    fn try_build_validates_input() {
        assert_eq!(
            CinctBuilder::new().try_build(&[vec![0, 9, 1]], 6).err(),
            Some(QueryError::UnknownEdge {
                edge: 9,
                n_edges: 6
            })
        );
        assert!(matches!(
            CinctBuilder::new().try_build(&[vec![], vec![]], 6),
            Err(QueryError::InvalidInput(_))
        ));
        // A mix of empty and non-empty trajectories would misattribute
        // every occurrence (IDs shift when empties are dropped).
        assert!(matches!(
            CinctBuilder::new().try_build(&[vec![], vec![0, 1]], 6),
            Err(QueryError::InvalidInput(_))
        ));
        assert!(matches!(
            CinctBuilder::new().try_build(&[], 6),
            Err(QueryError::InvalidInput(_))
        ));
        let idx = CinctBuilder::new().try_build(&paper_trajs(), 6).unwrap();
        assert_eq!(idx.count_path(&[0, 1]), 2);
    }
}
