//! CiNCT index construction (paper §III-A steps 1–5) with per-phase
//! timings for the Fig. 16 construction-time breakdown.
//!
//! # The allocation-lean pipeline
//!
//! The default build keeps the peak working set near two `n`-word arrays
//! (the text and the SA) instead of the seed's five:
//!
//! 1. **SA** via the workspace SA-IS ([`cinct_bwt::suffix_array_with`]) —
//!    no per-recursion-level allocations;
//! 2. **trajectory directory** read straight out of the SA's separator
//!    rows (the seed materialized a full n-word inverse suffix array just
//!    to look up one row per trajectory);
//! 3. **BWT in place**: the SA buffer *becomes* the BWT
//!    ([`cinct_bwt::bwt_replace_sa`]) once the directory and the optional
//!    SA samples are extracted;
//! 4. **labeling fused with Z-terms, in place**: one context-block scan
//!    rewrites the BWT buffer into `φ(T_bwt)` while accumulating every
//!    correction term `Z_{w′w}` (paper Eq. (7)) — the seed wrote a fresh
//!    labeled copy and then re-scanned both arrays;
//! 5. **wavelet tree** over the (now labeled) buffer, optionally
//!    multi-threaded via [`CinctBuilder::threads`] — parallel builds are
//!    byte-identical to sequential ones (see `cinct_succinct::parbuild`).
//!
//! The seed pipeline survives as [`CinctBuilder::build_timed_reference`]
//! so `cinct_bench`'s `buildpath` binary can measure both in one binary;
//! tests pin the two (and every thread count) to byte-identical
//! serialized indexes.

use crate::index::{CinctIndex, SaSamples};
use crate::rml::{LabelingStrategy, Rml};
use cinct_bwt::{
    bwt_from_sa, bwt_replace_sa, suffix_array_reference, suffix_array_with, CArray, SaisWorkspace,
    TrajectoryString,
};
use cinct_fmindex::QueryError;
use cinct_succinct::{BitBuf, HuffmanWaveletTree, IntVec, RankBitVec, RrrBitVec};
use std::time::{Duration, Instant};

/// Wall-clock spent in each construction phase. The paper's Fig. 16
/// splits its bars into `BWT`, `WT-build`, and `ET-graph-build`; this
/// breakdown is finer so build regressions localize to a stage:
/// corpus ingestion, suffix array, BWT derivation, RML/ET-graph labeling,
/// succinct-structure build, and the trajectory directory + SA samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConstructionTimings {
    /// Corpus ingestion: concatenating (reversed) trajectories into the
    /// trajectory string. Zero when the caller supplied a prepared string.
    pub ingest: Duration,
    /// Suffix-array construction (SA-IS).
    pub sa: Duration,
    /// BWT derivation from the SA plus the `C` array.
    pub bwt: Duration,
    /// ET-graph construction, RML labeling, and `Z`-term computation — all
    /// operations the other FM-index variants do not need.
    pub et_graph_build: Duration,
    /// Wavelet-tree construction over the labeled BWT.
    pub wt_build: Duration,
    /// Trajectory directory + optional SA samples.
    pub directory: Duration,
}

impl ConstructionTimings {
    /// Total construction time.
    pub fn total(&self) -> Duration {
        self.ingest + self.sa + self.bwt + self.et_graph_build + self.wt_build + self.directory
    }

    /// Suffix array + BWT derivation combined (the two halves of what a
    /// coarser breakdown would call the BWT phase; `fig16` folds
    /// `ingest`/`directory` in as well so its columns sum to the total).
    pub fn sa_plus_bwt(&self) -> Duration {
        self.sa + self.bwt
    }

    /// Render the per-stage breakdown as one human-readable line (the CLI
    /// `build` path and the `buildpath` bench both print this).
    pub fn breakdown(&self) -> String {
        format!(
            "ingest {:.3}s, SA {:.3}s, BWT {:.3}s, ET-graph/labeling {:.3}s, \
             succinct structures {:.3}s, directory {:.3}s",
            self.ingest.as_secs_f64(),
            self.sa.as_secs_f64(),
            self.bwt.as_secs_f64(),
            self.et_graph_build.as_secs_f64(),
            self.wt_build.as_secs_f64(),
            self.directory.as_secs_f64(),
        )
    }
}

/// Configurable CiNCT construction.
#[derive(Clone, Copy, Debug)]
pub struct CinctBuilder {
    labeling: LabelingStrategy,
    block_size: usize,
    locate_sampling: Option<usize>,
    threads: usize,
}

impl Default for CinctBuilder {
    fn default() -> Self {
        Self {
            labeling: LabelingStrategy::BigramSorted,
            block_size: 63,
            locate_sampling: None,
            threads: 1,
        }
    }
}

impl CinctBuilder {
    /// Default configuration: bigram-sorted RML, `b = 63`, no locate,
    /// single-threaded construction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Labeling strategy (Fig. 14 ablation).
    pub fn labeling(mut self, strategy: LabelingStrategy) -> Self {
        self.labeling = strategy;
        self
    }

    /// RRR block size `b` — the paper's only parameter (§III-C2),
    /// evaluated at `b ∈ {15, 31, 63}`.
    pub fn block_size(mut self, b: usize) -> Self {
        self.block_size = b;
        self
    }

    /// Enable locate support with the given SA sampling rate (smaller =
    /// faster locate, more space).
    pub fn locate_sampling(mut self, rate: usize) -> Self {
        assert!(rate >= 1);
        self.locate_sampling = Some(rate);
        self
    }

    /// Build the succinct structures with up to `n` worker threads (`0` =
    /// "auto", the machine's available parallelism — the workspace-wide
    /// convention shared with `QueryEngine::parallel`, see
    /// `rayon::resolve_threads`; `1` = sequential, the default). Any
    /// thread count produces a **byte-identical** serialized index; only
    /// wall-clock differs.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// The configured RRR block size (see [`CinctBuilder::block_size`]).
    pub fn configured_block_size(&self) -> usize {
        self.block_size
    }

    /// The configured SA sampling rate, `None` when locate support is off
    /// (see [`CinctBuilder::locate_sampling`]).
    pub fn configured_locate_sampling(&self) -> Option<usize> {
        self.locate_sampling
    }

    /// The configured labeling strategy (see [`CinctBuilder::labeling`]).
    pub fn configured_labeling(&self) -> LabelingStrategy {
        self.labeling
    }

    /// The configured thread knob, unresolved (`0` = auto).
    pub fn configured_threads(&self) -> usize {
        self.threads
    }

    /// Build from raw trajectories.
    ///
    /// Construction trusts its input for speed; use
    /// [`CinctBuilder::try_build`] when the trajectories come from an
    /// untrusted source.
    pub fn build(self, trajectories: &[Vec<u32>], n_edges: usize) -> CinctIndex {
        self.build_timed(trajectories, n_edges).0
    }

    /// Validate that every edge ID lies in `0..n_edges` and that there is
    /// something to index, then build. Violations surface as
    /// [`QueryError::UnknownEdge`] / [`QueryError::InvalidInput`] instead
    /// of a panic (or silent corruption) deep inside construction.
    pub fn try_build(
        self,
        trajectories: &[Vec<u32>],
        n_edges: usize,
    ) -> Result<CinctIndex, QueryError> {
        validate_corpus(trajectories, n_edges)?;
        Ok(self.build(trajectories, n_edges))
    }

    /// Build and report per-phase timings.
    pub fn build_timed(
        self,
        trajectories: &[Vec<u32>],
        n_edges: usize,
    ) -> (CinctIndex, ConstructionTimings) {
        let t0 = Instant::now();
        let ts = TrajectoryString::build(trajectories, n_edges);
        let ingest = t0.elapsed();
        crate::metrics::record_ingest(ingest);
        let (index, mut timings) = self.build_from_trajectory_string(&ts, n_edges);
        timings.ingest = ingest;
        (index, timings)
    }

    /// Build from a **stream** of trajectories: edge sequences are folded
    /// into the (reversed, `$`-separated) trajectory string as they
    /// arrive, so the caller never has to materialize the whole corpus as
    /// a `Vec<Vec<u32>>` alongside the index's own arrays. Everything
    /// downstream is the allocation-lean pipeline of
    /// [`CinctBuilder::build_from_trajectory_string`].
    pub fn build_streamed<I, T>(
        self,
        trajectories: I,
        n_edges: usize,
    ) -> (CinctIndex, ConstructionTimings)
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u32]>,
    {
        let t0 = Instant::now();
        let ts = TrajectoryString::from_iter(trajectories, n_edges);
        let ingest = t0.elapsed();
        crate::metrics::record_ingest(ingest);
        let (index, mut timings) = self.build_from_trajectory_string(&ts, n_edges);
        timings.ingest = ingest;
        (index, timings)
    }

    /// Build from a prepared trajectory string (lets callers share the
    /// string across several index builds, as the experiment harness does).
    pub fn build_from_trajectory_string(
        self,
        ts: &TrajectoryString,
        n_edges: usize,
    ) -> (CinctIndex, ConstructionTimings) {
        let mut timings = ConstructionTimings::default();
        let text = ts.text();
        let sigma = ts.sigma();
        let n = text.len();

        // Step 1–2a: suffix array (workspace SA-IS, no per-level allocs).
        let t0 = Instant::now();
        let mut ws = SaisWorkspace::new();
        let mut sa = suffix_array_with(text, sigma, &mut ws);
        drop(ws);
        timings.sa = t0.elapsed();

        // Symbol counts; needed by the directory (separator rows) and by
        // every later stage. Accounted with the BWT stage, matching the
        // reference pipeline's breakdown.
        let t0 = Instant::now();
        let c = CArray::new(text, sigma);
        timings.bwt = t0.elapsed();

        // Trajectory directory: the BWT row of trajectory `k`'s closing
        // `$` is `ISA[end_k]`. Every `$` position is some trajectory's
        // end, and their rows are exactly the `$` context block of the
        // SA — so one scan of that block replaces the seed's full n-word
        // inverse suffix array.
        let t0 = Instant::now();
        let starts = ts.starts();
        let ends: Vec<u32> = starts
            .iter()
            .enumerate()
            .map(|(k, &s)| {
                let end = starts.get(k + 1).map_or(n - 2, |&next| next as usize - 1);
                debug_assert_eq!(text[end], cinct_bwt::SEPARATOR);
                debug_assert!(end > s as usize);
                end as u32
            })
            .collect();
        let mut traj_rows = vec![0u32; ends.len()];
        for row in c.symbol_range(cinct_bwt::SEPARATOR) {
            let pos = sa[row];
            let k = ends
                .binary_search(&pos)
                .expect("separator position is a trajectory end");
            traj_rows[k] = row as u32;
        }

        // Optional SA samples for locate.
        let samples = self.locate_sampling.map(|rate| {
            let mut marked = BitBuf::zeros(n);
            let mut values = IntVec::with_capacity(IntVec::width_for(n as u64), n / rate + 1);
            for (row, &pos) in sa.iter().enumerate() {
                if (pos as usize) % rate == 0 {
                    marked.set(row, true);
                    values.push(pos as u64);
                }
            }
            values.shrink_to_fit();
            SaSamples {
                marked: RankBitVec::new(marked),
                values,
                rate,
            }
        });
        timings.directory = t0.elapsed();

        // Step 2b: the SA is spent — derive the BWT into the same buffer.
        let t0 = Instant::now();
        bwt_replace_sa(text, &mut sa);
        let mut labeled = sa; // T_bwt for now; labeled in place below
        timings.bwt += t0.elapsed();

        // Steps 3–4: ET-graph straight from the BWT's context blocks (no
        // hashed bigram map), then one fused scan rewrites `T_bwt` into
        // `φ(T_bwt)` while accumulating every `Z` term.
        let t0 = Instant::now();
        let mut rml = Rml::from_bwt(&labeled, &c, self.labeling);
        label_and_z_in_place(&mut rml, &mut labeled, &c);
        timings.et_graph_build = t0.elapsed();

        // Step 5: compressed wavelet tree (optionally multi-threaded).
        let t0 = Instant::now();
        let wt = HuffmanWaveletTree::<RrrBitVec>::with_params_mt(
            &labeled,
            self.block_size,
            self.threads,
        );
        timings.wt_build = t0.elapsed();

        let index = CinctIndex {
            c,
            labeled: wt,
            rml,
            traj_starts: starts.to_vec(),
            traj_rows,
            samples,
            n_network_edges: n_edges,
        };
        // Every optimized build funnels through here (owned, streamed,
        // per-shard); the reference pipeline is deliberately unmetered.
        // `ingest` is recorded by build_timed/build_streamed, which know it.
        crate::metrics::record_build(&timings);
        (index, timings)
    }

    /// The **seed-equivalent** pipeline, kept verbatim for the `buildpath`
    /// bench (optimized-vs-seed in one binary, the PR 3 `*_reference`
    /// convention): allocation-heavy recursive SA-IS, a separate BWT copy,
    /// a separate labeled copy plus a second Z-term scan, a full n-word
    /// ISA for the trajectory directory, and a single-threaded wavelet
    /// tree. Produces a byte-identical index (pinned by tests); nothing
    /// but benches and tests should call it.
    pub fn build_timed_reference(
        self,
        trajectories: &[Vec<u32>],
        n_edges: usize,
    ) -> (CinctIndex, ConstructionTimings) {
        let t0 = Instant::now();
        let ts = TrajectoryString::build(trajectories, n_edges);
        let ingest = t0.elapsed();
        let (index, mut timings) = self.build_from_trajectory_string_reference(&ts, n_edges);
        timings.ingest = ingest;
        (index, timings)
    }

    /// See [`CinctBuilder::build_timed_reference`].
    pub fn build_from_trajectory_string_reference(
        self,
        ts: &TrajectoryString,
        n_edges: usize,
    ) -> (CinctIndex, ConstructionTimings) {
        let mut timings = ConstructionTimings::default();

        // Steps 1–2: trajectory string → BWT (fresh allocations each).
        let t0 = Instant::now();
        let text = ts.text();
        let sigma = ts.sigma();
        let sa = suffix_array_reference(text, sigma);
        timings.sa = t0.elapsed();
        let t0 = Instant::now();
        let tbwt = bwt_from_sa(text, &sa);
        let c = CArray::new(text, sigma);
        timings.bwt = t0.elapsed();

        // Steps 3–4: ET-graph, RML, labeled BWT copy, Z terms (re-scan).
        let t0 = Instant::now();
        let mut rml = Rml::from_text(text, sigma, self.labeling);
        let labeled = rml.label_bwt(&tbwt, &c);
        compute_z_terms(&mut rml, &tbwt, &labeled, &c);
        timings.et_graph_build = t0.elapsed();

        // Step 5: compressed wavelet tree (sequential).
        let t0 = Instant::now();
        let wt = HuffmanWaveletTree::<RrrBitVec>::with_params(&labeled, self.block_size);
        timings.wt_build = t0.elapsed();

        // Trajectory directory via a full inverse suffix array.
        let t0 = Instant::now();
        let n = text.len();
        let mut isa = vec![0u32; n];
        for (row, &pos) in sa.iter().enumerate() {
            isa[pos as usize] = row as u32;
        }
        let traj_rows: Vec<u32> = ts
            .starts()
            .iter()
            .enumerate()
            .map(|(k, &s)| {
                let end = ts
                    .starts()
                    .get(k + 1)
                    .map_or(n - 2, |&next| next as usize - 1);
                debug_assert_eq!(text[end], cinct_bwt::SEPARATOR);
                debug_assert!(end > s as usize);
                isa[end]
            })
            .collect();

        // Optional SA samples for locate.
        let samples = self.locate_sampling.map(|rate| {
            let mut marked = BitBuf::zeros(n);
            let mut rows: Vec<(u32, u64)> = Vec::with_capacity(n / rate + 1);
            for (row, &pos) in sa.iter().enumerate() {
                if (pos as usize) % rate == 0 {
                    marked.set(row, true);
                    rows.push((row as u32, pos as u64));
                }
            }
            let mut values = IntVec::with_capacity(IntVec::width_for(n as u64), rows.len());
            for &(_, pos) in &rows {
                values.push(pos);
            }
            SaSamples {
                marked: RankBitVec::new(marked),
                values,
                rate,
            }
        });
        timings.directory = t0.elapsed();

        let index = CinctIndex {
            c,
            labeled: wt,
            rml,
            traj_starts: ts.starts().to_vec(),
            traj_rows,
            samples,
            n_network_edges: n_edges,
        };
        (index, timings)
    }
}

/// The `try_build` validation contract, shared by monolithic
/// ([`CinctBuilder::try_build`]) and sharded construction/ingest
/// (`ShardedBuilder::try_build`, `ShardedCinct::append_batch`): a
/// non-empty corpus, no empty trajectory (dropping one during
/// construction would silently shift every trajectory ID), every edge
/// in `0..n_edges`.
pub(crate) fn validate_corpus(trajectories: &[Vec<u32>], n_edges: usize) -> Result<(), QueryError> {
    if trajectories.is_empty() {
        return Err(QueryError::InvalidInput("no trajectories to index".into()));
    }
    if let Some(i) = trajectories.iter().position(|t| t.is_empty()) {
        return Err(QueryError::InvalidInput(format!("trajectory {i} is empty")));
    }
    for t in trajectories {
        for &edge in t {
            if edge as usize >= n_edges {
                return Err(QueryError::UnknownEdge { edge, n_edges });
            }
        }
    }
    Ok(())
}

/// One fused context-block scan (the optimized pipeline's steps 3–4):
/// rewrite `T_bwt` into `φ(T_bwt)` **in place** while accumulating every
/// correction term `Z_{w′w}` (paper Eq. (7)). At each block boundary
/// `j = C[w′]` the running counters hold `rank_η(φ(T_bwt), j)` and
/// `rank_w(T_bwt, j)` for every `η`/`w` — exactly the Z-term operands —
/// so no second pass over the two arrays is needed.
fn label_and_z_in_place(rml: &mut Rml, tbwt: &mut [u32], c: &CArray) {
    let sigma = c.sigma();
    let max_label = rml.graph().max_out_degree();
    let mut label_counts = vec![0u64; max_label + 1];
    let mut sym_counts = vec![0u64; sigma];
    // Dense symbol→label map for the current block: O(1) per position
    // instead of the seed's per-position adjacency-row scan. Installed and
    // cleared per block (O(E) total).
    let mut map = vec![0u32; sigma];
    let mut zs: Vec<i64> = Vec::with_capacity(rml.graph().num_edges());
    for w_prime in 0..sigma as u32 {
        let graph = rml.graph();
        let degree = graph.out_degree(w_prime);
        for k in 0..degree {
            let label = k as u32 + 1;
            let w = graph.decode(label, w_prime);
            zs.push(label_counts[label as usize] as i64 - sym_counts[w as usize] as i64);
            map[w as usize] = label;
        }
        for j in c.symbol_range(w_prime) {
            let w = tbwt[j];
            let label = map[w as usize];
            debug_assert!(label > 0, "BWT transition must exist in the ET-graph");
            sym_counts[w as usize] += 1;
            label_counts[label as usize] += 1;
            tbwt[j] = label;
        }
        let graph = rml.graph();
        for k in 0..degree {
            map[graph.decode(k as u32 + 1, w_prime) as usize] = 0;
        }
    }
    rml.graph_mut().attach_z_terms(&zs);
}

/// Compute every correction term `Z_{w′w}` (paper Eq. (7)) in one linear
/// scan over the BWT: at each context-block boundary `j = C[w′]`, for each
/// out-edge `(w′, w)` with label `η`,
/// `Z = rank_η(φ(T_bwt), C[w′]) − rank_w(T_bwt, C[w′])`. The seed's
/// separate pass, kept for the reference pipeline.
fn compute_z_terms(rml: &mut Rml, tbwt: &[u32], labeled: &[u32], c: &CArray) {
    let sigma = c.sigma();
    let max_label = labeled.iter().copied().max().unwrap_or(1) as usize;
    let mut label_counts = vec![0u64; max_label + 1];
    let mut sym_counts = vec![0u64; sigma];
    let mut zs: Vec<i64> = Vec::with_capacity(rml.graph().num_edges());
    let mut j = 0usize;
    for w_prime in 0..sigma as u32 {
        let boundary = c.get(w_prime);
        while j < boundary {
            label_counts[labeled[j] as usize] += 1;
            sym_counts[tbwt[j] as usize] += 1;
            j += 1;
        }
        let graph = rml.graph();
        let degree = graph.out_degree(w_prime);
        for k in 0..degree {
            let label = k as u32 + 1;
            let w = graph.decode(label, w_prime);
            zs.push(label_counts[label as usize] as i64 - sym_counts[w as usize] as i64);
        }
    }
    rml.graph_mut().attach_z_terms(&zs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct_bwt::bwt::bwt;

    fn paper_trajs() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
    }

    /// A mid-size pseudo-random corpus for pipeline-equivalence tests.
    fn synthetic_trajs(n_trajs: usize, n_edges: u32, seed: u64) -> Vec<Vec<u32>> {
        let mut x = seed | 1;
        (0..n_trajs)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let len = 3 + ((x >> 33) % 40) as usize;
                let mut cur = ((x >> 20) as u32) % n_edges;
                (0..len)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        // Walk-like: move to one of a few successors.
                        cur = (cur * 4 + 1 + ((x >> 33) as u32) % 4) % n_edges;
                        cur
                    })
                    .collect()
            })
            .collect()
    }

    fn serialize(idx: &CinctIndex) -> Vec<u8> {
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).expect("in-memory write");
        bytes
    }

    #[test]
    fn z_terms_satisfy_eq7() {
        let trajs = paper_trajs();
        let ts = TrajectoryString::build(&trajs, 6);
        let (_, tbwt) = bwt(ts.text(), ts.sigma());
        let c = CArray::new(ts.text(), ts.sigma());
        let idx = CinctBuilder::new().build(&trajs, 6);
        let labeled: Vec<u32> = (0..tbwt.len())
            .map(|j| {
                let w_prime = c.symbol_at(j);
                idx.rml()
                    .label(tbwt[j], w_prime)
                    .expect("transition exists")
            })
            .collect();
        for w_prime in 0..idx.sigma() as u32 {
            for (k, &w) in idx.rml().graph().out(w_prime).iter().enumerate() {
                let label = k as u32 + 1;
                let boundary = c.get(w_prime);
                let rank_label = labeled[..boundary].iter().filter(|&&l| l == label).count() as i64;
                let rank_sym = tbwt[..boundary].iter().filter(|&&s| s == w).count() as i64;
                assert_eq!(
                    idx.rml().graph().z_term(label, w_prime),
                    rank_label - rank_sym,
                    "Z[{w_prime}→{w}]"
                );
            }
        }
    }

    #[test]
    fn timings_cover_all_phases() {
        let (_, t) = CinctBuilder::new().build_timed(&paper_trajs(), 6);
        for stage in [
            t.ingest,
            t.sa,
            t.bwt,
            t.et_graph_build,
            t.wt_build,
            t.directory,
        ] {
            assert!(t.total() >= stage);
        }
        assert_eq!(
            t.total(),
            t.ingest + t.sa_plus_bwt() + t.et_graph_build + t.wt_build + t.directory
        );
        // Every stage appears in the human-readable breakdown.
        let line = t.breakdown();
        for key in ["ingest", "SA", "BWT", "ET-graph", "succinct", "directory"] {
            assert!(line.contains(key), "breakdown missing {key}: {line}");
        }
    }

    #[test]
    fn builder_is_reusable_and_deterministic() {
        let b = CinctBuilder::new().block_size(31);
        let i1 = b.build(&paper_trajs(), 6);
        let i2 = b.build(&paper_trajs(), 6);
        assert_eq!(i1.core_size_in_bytes(), i2.core_size_in_bytes());
        assert_eq!(i1.path_range(&[0, 1]), i2.path_range(&[0, 1]));
    }

    #[test]
    fn optimized_pipeline_matches_reference_bytes() {
        // The allocation-lean pipeline (in-place BWT, fused labeling+Z,
        // separator-row directory) must produce the same index as the
        // seed pipeline, byte for byte — with and without locate support.
        let trajs = synthetic_trajs(120, 50, 7);
        for builder in [
            CinctBuilder::new(),
            CinctBuilder::new().block_size(15).locate_sampling(4),
        ] {
            let (opt, _) = builder.build_timed(&trajs, 50);
            let (reference, _) = builder.build_timed_reference(&trajs, 50);
            assert_eq!(serialize(&opt), serialize(&reference));
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_across_block_sizes() {
        // Determinism gate: a parallel-built CinctIndex serializes
        // byte-identical to the sequential build for b ∈ {15, 31, 63}.
        let trajs = synthetic_trajs(400, 80, 21);
        for b in [15usize, 31, 63] {
            let base = CinctBuilder::new().block_size(b).locate_sampling(8);
            let seq_bytes = serialize(&base.build(&trajs, 80));
            for threads in [2usize, 4, 8, 0] {
                let par_bytes = serialize(&base.threads(threads).build(&trajs, 80));
                assert_eq!(par_bytes, seq_bytes, "b={b} threads={threads}");
            }
        }
    }

    #[test]
    fn streamed_build_matches_owned_build() {
        let trajs = synthetic_trajs(60, 30, 3);
        let (owned, _) = CinctBuilder::new()
            .locate_sampling(4)
            .build_timed(&trajs, 30);
        let (streamed, timings) = CinctBuilder::new()
            .locate_sampling(4)
            .build_streamed(trajs.iter().map(Vec::as_slice), 30);
        assert_eq!(serialize(&owned), serialize(&streamed));
        assert!(timings.total() >= timings.ingest);
    }

    #[test]
    #[should_panic(expected = "rate >= 1")]
    fn rejects_zero_sampling() {
        let _ = CinctBuilder::new().locate_sampling(0);
    }

    #[test]
    fn try_build_validates_input() {
        assert_eq!(
            CinctBuilder::new().try_build(&[vec![0, 9, 1]], 6).err(),
            Some(QueryError::UnknownEdge {
                edge: 9,
                n_edges: 6
            })
        );
        assert!(matches!(
            CinctBuilder::new().try_build(&[vec![], vec![]], 6),
            Err(QueryError::InvalidInput(_))
        ));
        // A mix of empty and non-empty trajectories would misattribute
        // every occurrence (IDs shift when empties are dropped).
        assert!(matches!(
            CinctBuilder::new().try_build(&[vec![], vec![0, 1]], 6),
            Err(QueryError::InvalidInput(_))
        ));
        assert!(matches!(
            CinctBuilder::new().try_build(&[], 6),
            Err(QueryError::InvalidInput(_))
        ));
        let idx = CinctBuilder::new().try_build(&paper_trajs(), 6).unwrap();
        assert_eq!(idx.count_path(&[0, 1]), 2);
    }
}
