#![warn(missing_docs)]
//! CiNCT — Compressed-index for Network-Constrained Trajectories.
//!
//! Rust reproduction of Koide, Tadokoro, Xiao & Ishikawa,
//! *"CiNCT: Compression and retrieval for massive vehicular trajectories
//! via relative movement labeling"*, ICDE 2018.
//!
//! CiNCT stores a fleet's worth of road-network trajectories in a
//! compressed self-index that supports:
//!
//! * **suffix range queries** — "which trajectories traveled exactly along
//!   path `P`?" — in time independent of the road-network size σ
//!   (Theorem 5), and
//! * **sub-path extraction** from any position, without decompressing the
//!   rest of the data.
//!
//! The two ideas:
//!
//! 1. **Relative movement labeling (RML, §III-B)** — because a vehicle on
//!    segment `w′` can only move to one of the few segments connected to
//!    `w′`, the BWT of the trajectory string can be re-labeled
//!    *per context block* with small integers `φ(w|w′) ∈ {1..δ}`, ordered
//!    by bigram frequency (which is entropy-optimal, Theorem 3). The
//!    labeled BWT has tiny `H0`, so its Huffman-shaped wavelet tree is both
//!    small and shallow.
//! 2. **PseudoRank (§IV-A)** — `rank_w(T_bwt, j)` is recovered from the
//!    labeled BWT alone as `rank_η(φ(T_bwt), j) − Z_{w′w}` whenever `j`
//!    lies in the context block of `w′` (Theorem 2), with one precomputed
//!    correction term `Z` per ET-graph edge.
//!
//! # Quick start
//!
//! Every index in this workspace — CiNCT here, the five Table-II baselines
//! in `cinct_fmindex` — answers queries through one trait, [`PathQuery`]:
//!
//! ```
//! use cinct::{CinctBuilder, CinctIndex, Path, PathQuery, QueryError};
//!
//! // Paper Fig. 1: four trajectories over road segments A..F = 0..5.
//! let trajectories = vec![
//!     vec![0, 1, 4, 5], // A B E F
//!     vec![0, 1, 2],    // A B C
//!     vec![1, 2],       // B C
//!     vec![0, 3],       // A D
//! ];
//! // `locate_sampling` enables occurrence listing (locate queries).
//! let index = CinctBuilder::new().locate_sampling(4).build(&trajectories, 6);
//!
//! // Counting: how many vehicles traveled A then B?
//! assert_eq!(index.count(Path::new(&[0, 1])), 2);
//! // An absent path is a non-error: no suffix range, zero matches.
//! assert_eq!(index.range(Path::new(&[3, 0])), None);
//! // Occurrence listing streams (trajectory, offset) pairs lazily off
//! // sampled-suffix-array walks — no intermediate Vec.
//! let occs = index.occurrences(Path::new(&[1, 2])).unwrap();
//! assert_eq!(occs.collect_sorted(), vec![(1, 1), (2, 0)]);
//! // Malformed queries are typed errors (see [`error`] for the taxonomy).
//! assert_eq!(
//!     index.occurrences(Path::new(&[99])).err(),
//!     Some(QueryError::UnknownEdge { edge: 99, n_edges: 6 })
//! );
//! // Recover a stored trajectory from the compressed index alone.
//! assert_eq!(index.trajectory(0), vec![0, 1, 4, 5]);
//! ```
//!
//! Batches of heterogeneous queries run through [`engine::QueryEngine`],
//! which works over any `&dyn PathQuery` backend and reports per-query
//! results plus timing; `QueryEngine::parallel(n)` fans a batch out
//! across threads with order- and value-identical results. Every thread
//! knob in the workspace shares one convention: **`0` means "auto"** (the
//! machine's available parallelism, `rayon::resolve_threads`), `1` means
//! sequential.
//!
//! # Scaling out: sharded corpora
//!
//! One index means one machine-sized BWT and a full rebuild per new
//! trajectory. [`ShardedCinct`] (module [`shard`]) partitions the corpus
//! into K per-shard indexes behind the same [`PathQuery`] trait, with
//! fan-out querying under a **global trajectory-ID namespace**, durable
//! multi-file persistence (module [`store`]), and incremental ingest:
//!
//! ```
//! use cinct::{Path, PathQuery, ShardedBuilder, ShardedCinct};
//!
//! let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
//! let mut sharded = ShardedBuilder::new()
//!     .shards(2)                 // K per-shard CinctIndexes
//!     .locate_sampling(4)
//!     .build(&trajs, 6);
//! // Monolithic answers, global IDs — shard layout is invisible.
//! assert_eq!(sharded.count(Path::new(&[0, 1])), 2);
//! let occ = sharded.occurrences(Path::new(&[1, 2])).unwrap();
//! assert_eq!(occ.collect_sorted(), vec![(1, 1), (2, 0)]);
//! // Grow without a rebuild; re-balance when small shards pile up.
//! sharded.append_batch(&[vec![1, 2, 5]]).unwrap();
//! sharded.compact(2).unwrap();
//! # let dir = std::env::temp_dir().join(format!("cinct-doc-{}", std::process::id()));
//! // Durable: versioned, checksummed manifest + one file per shard.
//! sharded.save_dir(&dir).unwrap();
//! let back = ShardedCinct::open_dir(&dir).unwrap();
//! assert_eq!(back.count(Path::new(&[1, 2])), 3);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! The `cinct` CLI drives the same layer: `cinct build trips.txt out.d
//! --shards 8` builds a sharded directory, `cinct append out.d more.txt`
//! seals new batches into fresh shards, `cinct compact out.d 8`
//! re-balances, and `count`/`locate`/`get`/`stats` accept a sharded
//! directory anywhere they accept a single-file index.
//!
//! The query hot path (RRR rank directory, fused wavelet descents, O(1)
//! LF context) and its recorded baseline (`BENCH_PR3.json`) are described
//! in the repository's `PERFORMANCE.md`, alongside the sharded serving
//! cost model and the `BENCH_PR5.json` sharding baseline.

pub mod builder;
pub mod engine;
pub mod error;
pub mod et_graph;
pub mod faultio;
pub mod index;
pub mod metrics;
pub mod prune;
pub mod rml;
pub mod shard;
pub mod stats;
pub mod store;
pub mod temporal;
pub mod text_io;
pub mod trace;
pub mod wal;

pub use builder::{CinctBuilder, ConstructionTimings};
pub use engine::{BatchReport, Query, QueryEngine, QueryOutcome, QueryValue};
pub use error::QueryError;
pub use et_graph::EtGraph;
pub use index::CinctIndex;
pub use prune::{EdgeMembership, ShardPruning};
pub use rml::{LabelingStrategy, Rml};
pub use shard::{PreparedBatch, QuarantinedShard, ShardPartition, ShardedBuilder, ShardedCinct};
pub use stats::DatasetStats;
pub use store::{Durability, OpenMode};
pub use temporal::{
    StrictIter, StrictPathMatch, StrictPathQuery, TemporalCinct, TimestampedTrajectory,
};
pub use trace::{QueryTrace, ShardTrace, TraceStep};
pub use wal::{Wal, WalRead, WalRecord, MAX_RECORD_BYTES};

// The unified query surface lives in `cinct_fmindex` (below every backend
// in the dependency graph); re-export it so `use cinct::PathQuery` works.
pub use cinct_fmindex::{ExtractIter, OccurIter, OccurrenceSource, Path, PathQuery};
