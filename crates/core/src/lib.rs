#![warn(missing_docs)]
//! CiNCT — Compressed-index for Network-Constrained Trajectories.
//!
//! Rust reproduction of Koide, Tadokoro, Xiao & Ishikawa,
//! *"CiNCT: Compression and retrieval for massive vehicular trajectories
//! via relative movement labeling"*, ICDE 2018.
//!
//! CiNCT stores a fleet's worth of road-network trajectories in a
//! compressed self-index that supports:
//!
//! * **suffix range queries** — "which trajectories traveled exactly along
//!   path `P`?" — in time independent of the road-network size σ
//!   (Theorem 5), and
//! * **sub-path extraction** from any position, without decompressing the
//!   rest of the data.
//!
//! The two ideas:
//!
//! 1. **Relative movement labeling (RML, §III-B)** — because a vehicle on
//!    segment `w′` can only move to one of the few segments connected to
//!    `w′`, the BWT of the trajectory string can be re-labeled
//!    *per context block* with small integers `φ(w|w′) ∈ {1..δ}`, ordered
//!    by bigram frequency (which is entropy-optimal, Theorem 3). The
//!    labeled BWT has tiny `H0`, so its Huffman-shaped wavelet tree is both
//!    small and shallow.
//! 2. **PseudoRank (§IV-A)** — `rank_w(T_bwt, j)` is recovered from the
//!    labeled BWT alone as `rank_η(φ(T_bwt), j) − Z_{w′w}` whenever `j`
//!    lies in the context block of `w′` (Theorem 2), with one precomputed
//!    correction term `Z` per ET-graph edge.
//!
//! # Quick start
//!
//! ```
//! use cinct::CinctIndex;
//! use cinct_fmindex::PatternIndex;
//!
//! // Paper Fig. 1: four trajectories over road segments A..F = 0..5.
//! let trajectories = vec![
//!     vec![0, 1, 4, 5], // A B E F
//!     vec![0, 1, 2],    // A B C
//!     vec![1, 2],       // B C
//!     vec![0, 3],       // A D
//! ];
//! let index = CinctIndex::build(&trajectories, 6);
//! // How many vehicles traveled A then B?
//! assert_eq!(index.count_path(&[0, 1]), 2);
//! // Recover a stored trajectory.
//! assert_eq!(index.trajectory(0), vec![0, 1, 4, 5]);
//! ```

pub mod builder;
pub mod et_graph;
pub mod index;
pub mod rml;
pub mod stats;
pub mod temporal;
pub mod text_io;

pub use builder::{CinctBuilder, ConstructionTimings};
pub use et_graph::EtGraph;
pub use index::CinctIndex;
pub use rml::{LabelingStrategy, Rml};
pub use stats::DatasetStats;
pub use temporal::{StrictPathQuery, TemporalCinct, TimestampedTrajectory};
