//! Per-shard pruning metadata: which edge labels a shard actually
//! contains, and which slice of the global trajectory-ID namespace it
//! owns.
//!
//! A K-shard fan-out pays K full backward searches even when a shard
//! cannot possibly match — BENCH_PR5.json records count collapsing to
//! 0.34x at K=8 for exactly this reason. The fix is metadata, not
//! search: an edge absent from a shard's BWT makes *every* path through
//! that edge absent from the shard, so an O(L) membership probe (L =
//! pattern length) replaces an O(L) backward search's rank machinery for
//! shards that cannot match. [`EdgeMembership`] is that structure;
//! [`ShardPruning`] bundles it with the shard's global-ID span so
//! ID-constrained lookups route straight to the owning shard.
//!
//! # Exact bitset vs Bloom filter
//!
//! Membership is **exact** (one bit per alphabet edge) while the
//! alphabet is small: at the paper's σ≈5k a bitset is ~640 bytes per
//! shard and can never mis-skip. Beyond [`BITSET_MAX_EDGES`] the bitset
//! gives way to a fixed-size Bloom filter ([`BLOOM_BITS`] bits,
//! [`BLOOM_HASHES`] probes): a Bloom *false positive* only costs a
//! wasted shard visit — the backward search then rules the shard out as
//! before — while a **false skip is impossible** in either shape, which
//! is the property the pruned == unpruned identity tests pin.
//!
//! Metadata is derived **exactly** from a shard's own `C` array
//! (`count(edge + SYMBOL_OFFSET) > 0` — O(σ), no text scan), so it can
//! be (re)built wherever a shard materializes: fresh builds, appends,
//! compaction, and legacy v2 manifests that predate the pruning block.

use crate::index::CinctIndex;
use cinct_bwt::SYMBOL_OFFSET;
use cinct_fmindex::Path;
use cinct_succinct::serial::{read_u64, read_usize, write_u64, write_usize, Persist};
use std::io::{Read, Write};

/// Largest edge alphabet served by the exact bitset (128 KiB of bits per
/// shard). City-scale road networks (σ in the thousands to low millions)
/// stay exact; only a corpus indexed over a truly huge synthetic alphabet
/// falls back to the Bloom shape.
pub const BITSET_MAX_EDGES: usize = 1 << 20;
/// Bloom filter size in bits (8 KiB per shard) for alphabets beyond
/// [`BITSET_MAX_EDGES`].
pub const BLOOM_BITS: usize = 1 << 16;
/// Bloom probe count. With m = 2^16 bits and k = 4, a shard holding
/// 10k distinct edges sees a false-*visit* rate well under 1% — and a
/// false visit only costs one redundant backward search.
pub const BLOOM_HASHES: u32 = 4;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Set-membership over a shard's edge alphabet: exact bitset for small
/// alphabets, Bloom filter beyond [`BITSET_MAX_EDGES`]. Both shapes share
/// one invariant: `contains` may report a *false positive* (Bloom only),
/// never a false negative — so "not contained" always licenses a skip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeMembership {
    /// The bit array, packed into words.
    words: Vec<u64>,
    /// Bit-domain size: the edge alphabet for the exact shape, the
    /// filter size for the Bloom shape.
    n_bits: usize,
    /// `0` = exact bitset; otherwise the number of Bloom probes.
    hashes: u32,
}

impl EdgeMembership {
    /// An empty membership set shaped for an alphabet of `n_edges`
    /// labels: exact while `n_edges <= BITSET_MAX_EDGES`, Bloom beyond.
    pub fn for_alphabet(n_edges: usize) -> Self {
        if n_edges <= BITSET_MAX_EDGES {
            Self {
                words: vec![0; n_edges.div_ceil(64)],
                n_bits: n_edges,
                hashes: 0,
            }
        } else {
            Self {
                words: vec![0; BLOOM_BITS / 64],
                n_bits: BLOOM_BITS,
                hashes: BLOOM_HASHES,
            }
        }
    }

    /// Whether this is the exact (false-positive-free) shape.
    pub fn is_exact(&self) -> bool {
        self.hashes == 0
    }

    fn bloom_bits(&self, edge: u32) -> impl Iterator<Item = usize> + '_ {
        let h = splitmix64(edge as u64);
        let h1 = h >> 32;
        let h2 = h | 1; // odd, so the probe sequence covers the filter
        (0..self.hashes as u64)
            .map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % self.n_bits as u64) as usize)
    }

    /// Record `edge` as present.
    pub fn insert(&mut self, edge: u32) {
        if self.is_exact() {
            let b = edge as usize;
            debug_assert!(b < self.n_bits, "edge {edge} beyond the membership domain");
            self.words[b / 64] |= 1 << (b % 64);
        } else {
            let bits: Vec<usize> = self.bloom_bits(edge).collect();
            for b in bits {
                self.words[b / 64] |= 1 << (b % 64);
            }
        }
    }

    /// Whether `edge` may be present. Exact shape: precise. Bloom shape:
    /// `true` may be a false positive; `false` is always right.
    #[inline]
    pub fn contains(&self, edge: u32) -> bool {
        if self.is_exact() {
            let b = edge as usize;
            // Out-of-alphabet edges are definitionally absent (backward
            // search returns None for them too).
            b < self.n_bits && self.words[b / 64] >> (b % 64) & 1 == 1
        } else {
            self.bloom_bits(edge)
                .all(|b| self.words[b / 64] >> (b % 64) & 1 == 1)
        }
    }

    /// Fold `other` into `self` (both must share a shape — all shards of
    /// one corpus do, the shape being a function of `n_edges` alone).
    /// Bloom unions stay sound: the union of two filters over-approximates
    /// the union of their sets.
    pub fn union_with(&mut self, other: &Self) {
        debug_assert!(self.same_shape(other), "membership shapes diverged");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether `other` has the same shape (domain size + probe count).
    pub fn same_shape(&self, other: &Self) -> bool {
        self.n_bits == other.n_bits && self.hashes == other.hashes
    }

    /// Heap bytes of the bit array.
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 8
    }

    fn persist(&self, w: &mut dyn Write) -> std::io::Result<()> {
        write_usize(w, self.n_bits)?;
        write_u64(w, self.hashes as u64)?;
        self.words.clone().persist(w)
    }

    fn restore(r: &mut dyn Read) -> std::io::Result<Self> {
        let n_bits = read_usize(r)?;
        let hashes = read_u64(r)? as u32;
        let words: Vec<u64> = Persist::restore(r)?;
        Ok(Self {
            words,
            n_bits,
            hashes,
        })
    }
}

/// One shard's pruning metadata: the edge-membership structure plus the
/// first/last global trajectory IDs the shard owns. Derived at every
/// point a shard materializes ([`ShardPruning::derive`]); persisted in
/// manifest format v3 (see [`crate::store`]) so it ships inside snapshot
/// bootstraps unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPruning {
    membership: EdgeMembership,
    /// Smallest global trajectory ID in the shard (`u32::MAX` when the
    /// shard is empty — unreachable through the builders).
    min_global: u32,
    /// Largest global trajectory ID in the shard.
    max_global: u32,
}

impl ShardPruning {
    /// Derive pruning metadata **exactly** from a shard's `C` array: edge
    /// `e` is present iff the shifted symbol `e + SYMBOL_OFFSET` occurs
    /// in the shard's text. O(σ) array probes — cheap enough to run at
    /// every assembly, append install, and legacy-manifest open.
    pub fn derive(index: &CinctIndex, n_edges: usize, globals: &[u32]) -> Self {
        let mut membership = EdgeMembership::for_alphabet(n_edges);
        let c = index.c_array();
        for e in 0..n_edges as u32 {
            if c.count(e + SYMBOL_OFFSET) > 0 {
                membership.insert(e);
            }
        }
        let (min_global, max_global) = id_span(globals);
        Self {
            membership,
            min_global,
            max_global,
        }
    }

    /// The membership structure.
    pub fn membership(&self) -> &EdgeMembership {
        &self.membership
    }

    /// Whether the shard may contain `edge` (false ⇒ definitely absent).
    #[inline]
    pub fn contains_edge(&self, edge: u32) -> bool {
        self.membership.contains(edge)
    }

    /// The first pattern edge whose absence from the membership set rules
    /// this shard out, or `None` when every edge may be present (the
    /// shard must then be searched). An absent edge makes every path
    /// through it absent, so `Some(_)` licenses skipping the backward
    /// search entirely — the search would have returned `None`.
    #[inline]
    pub fn rules_out(&self, path: &Path) -> Option<u32> {
        path.edges()
            .iter()
            .copied()
            .find(|&e| !self.membership.contains(e))
    }

    /// Smallest global trajectory ID owned by the shard.
    pub fn min_global(&self) -> u32 {
        self.min_global
    }

    /// Largest global trajectory ID owned by the shard.
    pub fn max_global(&self) -> u32 {
        self.max_global
    }

    /// Whether global ID `g` falls inside the shard's owned span. The
    /// span is a superset of ownership (compaction interleaves IDs across
    /// shards), so `false` rules the shard out while `true` merely
    /// permits it — the same one-sided contract as [`EdgeMembership`].
    pub fn may_own_id(&self, g: u32) -> bool {
        self.min_global <= g && g <= self.max_global
    }

    /// Sanity-check loaded metadata against the shard it claims to
    /// describe: the membership must be shaped for this corpus's alphabet
    /// and the ID span must match the shard's manifest column. A loader
    /// that finds a mismatch re-derives instead of trusting the block.
    pub fn matches(&self, n_edges: usize, globals: &[u32]) -> bool {
        let expect = EdgeMembership::for_alphabet(n_edges);
        self.membership.same_shape(&expect)
            && (self.min_global, self.max_global) == id_span(globals)
    }

    /// Heap bytes of the metadata.
    pub fn size_in_bytes(&self) -> usize {
        self.membership.size_in_bytes() + 8
    }

    /// Serialize (manifest v3 per-shard block).
    pub(crate) fn persist(&self, w: &mut dyn Write) -> std::io::Result<()> {
        self.membership.persist(w)?;
        write_u64(w, self.min_global as u64)?;
        write_u64(w, self.max_global as u64)
    }

    /// Deserialize (manifest v3 per-shard block).
    pub(crate) fn restore(r: &mut dyn Read) -> std::io::Result<Self> {
        let membership = EdgeMembership::restore(r)?;
        let min_global = read_u64(r)? as u32;
        let max_global = read_u64(r)? as u32;
        Ok(Self {
            membership,
            min_global,
            max_global,
        })
    }
}

fn id_span(globals: &[u32]) -> (u32, u32) {
    (
        globals.iter().copied().min().unwrap_or(u32::MAX),
        globals.iter().copied().max().unwrap_or(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CinctBuilder;

    #[test]
    fn exact_membership_is_precise() {
        let mut m = EdgeMembership::for_alphabet(100);
        assert!(m.is_exact());
        for e in [0u32, 1, 63, 64, 99] {
            m.insert(e);
        }
        for e in 0..100u32 {
            let expect = matches!(e, 0 | 1 | 63 | 64 | 99);
            assert_eq!(m.contains(e), expect, "edge {e}");
        }
        // Out-of-domain edges are definitionally absent.
        assert!(!m.contains(100));
        assert!(!m.contains(u32::MAX));
    }

    #[test]
    fn bloom_membership_has_no_false_negatives() {
        let mut m = EdgeMembership::for_alphabet(BITSET_MAX_EDGES + 1);
        assert!(!m.is_exact());
        let present: Vec<u32> = (0..5000u32).map(|i| i * 977 + 13).collect();
        for &e in &present {
            m.insert(e);
        }
        for &e in &present {
            assert!(m.contains(e), "false negative on {e}");
        }
        // False positives are allowed but must be rare at this load.
        let fp = (0..100_000u32)
            .map(|i| 50_000_000 + i)
            .filter(|&e| m.contains(e))
            .count();
        assert!(
            fp < 2_000,
            "Bloom false-positive rate too high: {fp}/100000"
        );
    }

    #[test]
    fn union_over_approximates_both_sides() {
        let mut a = EdgeMembership::for_alphabet(256);
        let mut b = EdgeMembership::for_alphabet(256);
        a.insert(3);
        b.insert(200);
        a.union_with(&b);
        assert!(a.contains(3) && a.contains(200) && !a.contains(4));
    }

    #[test]
    fn derive_matches_the_shard_text() {
        let trajs = vec![vec![0u32, 1, 4, 5], vec![0, 1, 2]];
        let idx = CinctBuilder::new().build(&trajs, 8);
        let p = ShardPruning::derive(&idx, 8, &[7, 3]);
        for e in 0..8u32 {
            let expect = matches!(e, 0 | 1 | 2 | 4 | 5);
            assert_eq!(p.contains_edge(e), expect, "edge {e}");
        }
        assert_eq!((p.min_global(), p.max_global()), (3, 7));
        assert!(p.may_own_id(5) && !p.may_own_id(2) && !p.may_own_id(8));
        assert_eq!(p.rules_out(Path::new(&[0, 1, 2])), None);
        assert_eq!(p.rules_out(Path::new(&[0, 3, 2])), Some(3));
        // Out-of-alphabet edges rule the shard out, matching backward
        // search's graceful None.
        assert_eq!(p.rules_out(Path::new(&[99])), Some(99));
        assert!(p.matches(8, &[3, 7]));
        assert!(!p.matches(8, &[3, 6]));
    }

    #[test]
    fn persist_roundtrip() {
        let trajs = vec![vec![2u32, 3], vec![5, 2]];
        let idx = CinctBuilder::new().build(&trajs, 6);
        let p = ShardPruning::derive(&idx, 6, &[0, 1]);
        let mut bytes = Vec::new();
        p.persist(&mut bytes).unwrap();
        let back = ShardPruning::restore(&mut std::io::Cursor::new(bytes)).unwrap();
        assert_eq!(back, p);
    }
}
