//! A length-prefixed, checksummed **write-ahead log** for append batches.
//!
//! `cinct serve` journals every `/v1/append` batch here *before* acking
//! it, so an acknowledged append survives `kill -9` — on the next start
//! the server replays the log into the reopened corpus, which only knows
//! about batches that made it into a [`ShardedCinct::save_dir`] manifest.
//! A successful save makes the journal redundant and truncates it.
//!
//! # On-disk format
//!
//! One file, `wal.cinct`, inside the corpus directory:
//!
//! ```text
//! [u64 magic|version]                                  8-byte header
//! [u64 len][u64 fnv64(payload)][payload: len bytes]    record 0
//! [u64 len][u64 fnv64(payload)][payload]               record 1
//! ...
//! ```
//!
//! A payload is the idempotency key (a `Vec<u8>` in [`Persist`] layout)
//! followed by the batch (`u64` count, then each trajectory as a
//! `Vec<u32>`). Records are framed independently, so recovery never
//! needs to trust anything past the last intact frame.
//!
//! # Crash semantics
//!
//! The only artifact a crash mid-append can leave is a **torn tail**: a
//! final frame with a short body or a checksum mismatch. That record was
//! never acknowledged (the ack happens after the durable append
//! returns), so [`Wal::open`] drops it — it truncates the file back to
//! the last intact frame and counts `cinct_wal_torn_tail_total`. A
//! damaged *header* is not recoverable and fails the open.
//!
//! Appends go through [`crate::faultio`], so the crash-matrix test
//! drives simulated power loss through every write and fsync in here
//! exactly like it does for `save_dir`.
//!
//! [`ShardedCinct::save_dir`]: crate::shard::ShardedCinct::save_dir

use crate::faultio;
use crate::store::{fnv64, fsync_err, io_err, Durability};
use cinct_fmindex::QueryError;
use cinct_succinct::serial::{read_usize, write_usize, Persist};
use std::fs::{File, OpenOptions};
use std::io::{Cursor, Seek, SeekFrom};
use std::path::{Path as FsPath, PathBuf};

/// The journal file inside a sharded-corpus directory.
pub const WAL_FILE: &str = "wal.cinct";

/// WAL magic prefix ("CINCWL" as bytes, low 16 bits = format version).
const WAL_PREFIX: u64 = 0x4349_4e43_574c_0000;
/// Current WAL format version.
const WAL_VERSION: u64 = 1;
/// Bytes of header before the first record.
const HEADER_LEN: u64 = 8;

/// One journaled append: its idempotency key (empty if the client sent
/// none) and the batch of trajectories.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Client-supplied idempotency key, `""` for unkeyed appends.
    pub key: String,
    /// The appended trajectories, in batch order.
    pub batch: Vec<Vec<u32>>,
}

/// An open append journal. Obtain one (plus any records a previous
/// process left behind) with [`Wal::open`]; journal with [`Wal::append`]
/// before acknowledging; call [`Wal::truncate`] once a successful
/// `save_dir` has made the journaled batches durable in the manifest.
pub struct Wal {
    file: File,
    path: PathBuf,
    durability: Durability,
    pending: usize,
    /// Set after a failed append/truncate: the file tail is no longer
    /// trusted, so further appends are refused until a reopen re-walks
    /// the frames.
    poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("durability", &self.durability)
            .field("pending", &self.pending)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Wal {
    /// Open (or create) the journal in corpus directory `dir`, returning
    /// the writer plus every intact record a previous process journaled
    /// but never folded into a manifest — the caller replays those into
    /// its freshly opened corpus, in order, before serving.
    ///
    /// A torn tail (the one artifact of a crash mid-append) is dropped
    /// and the file truncated back to its last intact frame; a corrupt
    /// header is `CorruptIndex`.
    pub fn open(
        dir: impl AsRef<FsPath>,
        durability: Durability,
    ) -> Result<(Wal, Vec<WalRecord>), QueryError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let mut wal = Wal {
            file,
            path: path.clone(),
            durability,
            pending: 0,
            poisoned: false,
        };
        // A file shorter than the header can only mean "never existed"
        // or "crashed while being created" (the header is written —
        // durably — before the first append can ack anything), so both
        // bootstrap a fresh journal.
        let fresh = wal.file.metadata().map_err(|e| io_err(&path, e))?.len() < HEADER_LEN;
        if fresh {
            wal.file.set_len(0).map_err(|e| io_err(&path, e))?;
            wal.file
                .seek(SeekFrom::Start(0))
                .map_err(|e| io_err(&path, e))?;
            // Header now, so recovery can always tell "new journal" from
            // "damaged journal"; durably, so the file itself survives.
            faultio::append_file(&mut wal.file, &(WAL_PREFIX | WAL_VERSION).to_le_bytes())
                .map_err(|e| io_err(&path, e))?;
            if durability == Durability::Durable {
                faultio::sync_file(&wal.file).map_err(|e| fsync_err(&path, e))?;
                faultio::sync_path(dir).map_err(|e| fsync_err(dir, e))?;
            }
            return Ok((wal, Vec::new()));
        }
        let bytes = faultio::read(&path).map_err(|e| io_err(&path, e))?;
        let magic = u64::from_le_bytes(bytes[..8].try_into().expect("length checked"));
        if magic & !0xffff != WAL_PREFIX {
            return Err(QueryError::CorruptIndex(
                "not a CiNCT WAL (bad magic)".into(),
            ));
        }
        if magic & 0xffff != WAL_VERSION {
            return Err(QueryError::CorruptIndex(format!(
                "unsupported WAL version {} (this build reads {WAL_VERSION})",
                magic & 0xffff
            )));
        }
        let mut records = Vec::new();
        let mut off = HEADER_LEN as usize;
        let mut intact_end = off;
        while bytes.len() - off >= 16 {
            let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
            let stored = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
            let Some(end) = off.checked_add(16).and_then(|s| s.checked_add(len)) else {
                break; // absurd length: torn frame
            };
            if end > bytes.len() {
                break; // short body: torn frame
            }
            let payload = &bytes[off + 16..end];
            if fnv64(payload) != stored {
                break; // bit rot or torn write inside the frame
            }
            let Ok(record) = parse_payload(payload) else {
                break; // checksum passed but layout didn't — treat as torn
            };
            records.push(record);
            off = end;
            intact_end = off;
        }
        if intact_end < bytes.len() {
            // Everything past the last intact frame was never acked (the
            // ack follows the durable append) — drop it.
            crate::metrics::store().wal_torn_tail.inc();
            wal.file
                .set_len(intact_end as u64)
                .map_err(|e| io_err(&path, e))?;
        }
        wal.file
            .seek(SeekFrom::Start(intact_end as u64))
            .map_err(|e| io_err(&path, e))?;
        wal.pending = records.len();
        crate::metrics::store()
            .wal_replayed
            .add(records.len() as u64);
        Ok((wal, records))
    }

    /// Journal one append **durably** (write + fsync under
    /// [`Durability::Durable`]). Only after this returns may the batch
    /// be acknowledged. Errors poison the writer: the on-disk tail is no
    /// longer trusted, so every later append fails until a reopen.
    pub fn append(&mut self, key: &str, batch: &[Vec<u32>]) -> Result<(), QueryError> {
        let _span = cinct_obs::Span::enter(&crate::metrics::store().wal_append_ns);
        if self.poisoned {
            return Err(QueryError::Io(format!(
                "{}: WAL poisoned by an earlier write failure; reopen to recover",
                self.path.display()
            )));
        }
        let mut payload: Vec<u8> = Vec::new();
        let w = &mut payload as &mut dyn std::io::Write;
        key.as_bytes().to_vec().persist(w)?;
        write_usize(w, batch.len())?;
        for traj in batch {
            traj.persist(w)?;
        }
        let mut frame = Vec::with_capacity(16 + payload.len());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&fnv64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(e) = faultio::append_file(&mut self.file, &frame) {
            self.poisoned = true;
            return Err(io_err(&self.path, e));
        }
        if self.durability == Durability::Durable {
            if let Err(e) = faultio::sync_file(&self.file) {
                self.poisoned = true;
                return Err(fsync_err(&self.path, e));
            }
        }
        self.pending += 1;
        crate::metrics::store().wal_appends.inc();
        Ok(())
    }

    /// Drop every journaled record (a successful `save_dir` has made
    /// them redundant): truncate back to the header, durably.
    pub fn truncate(&mut self) -> Result<(), QueryError> {
        if let Err(e) = faultio::truncate_file(&mut self.file, HEADER_LEN) {
            self.poisoned = true;
            return Err(io_err(&self.path, e));
        }
        if self.durability == Durability::Durable {
            if let Err(e) = faultio::sync_file(&self.file) {
                self.poisoned = true;
                return Err(fsync_err(&self.path, e));
            }
        }
        self.pending = 0;
        self.poisoned = false;
        crate::metrics::store().wal_truncations.inc();
        Ok(())
    }

    /// Records currently journaled but not yet folded into a manifest.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The journal file's path.
    pub fn path(&self) -> &FsPath {
        &self.path
    }
}

fn parse_payload(payload: &[u8]) -> Result<WalRecord, QueryError> {
    let mut cur = Cursor::new(payload);
    let r = &mut cur as &mut dyn std::io::Read;
    let key_bytes: Vec<u8> = Persist::restore(r)?;
    let key = String::from_utf8(key_bytes)
        .map_err(|_| QueryError::CorruptIndex("WAL record key is not UTF-8".into()))?;
    let n = read_usize(r)?;
    let mut batch = Vec::with_capacity(n.min(payload.len()));
    for _ in 0..n {
        batch.push(Persist::restore(r)?);
    }
    Ok(WalRecord { key, batch })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cinct-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_truncate() {
        let dir = scratch("roundtrip");
        let (mut wal, records) = Wal::open(&dir, Durability::Durable).unwrap();
        assert!(records.is_empty());
        wal.append("k1", &[vec![0, 1, 2], vec![3]]).unwrap();
        wal.append("", &[vec![4, 5]]).unwrap();
        assert_eq!(wal.pending(), 2);
        drop(wal);
        let (mut wal, records) = Wal::open(&dir, Durability::Durable).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord {
                    key: "k1".into(),
                    batch: vec![vec![0, 1, 2], vec![3]],
                },
                WalRecord {
                    key: "".into(),
                    batch: vec![vec![4, 5]],
                },
            ]
        );
        wal.truncate().unwrap();
        drop(wal);
        let (_, records) = Wal::open(&dir, Durability::Durable).unwrap();
        assert!(records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = scratch("torn");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1, 2]]).unwrap();
        wal.append("b", &[vec![3, 4]]).unwrap();
        drop(wal);
        // Chop mid-way through the second frame.
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (_, records) = Wal::open(&dir, Durability::Fast).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, "a");
        // The torn bytes are gone from disk too.
        assert!(std::fs::read(&path).unwrap().len() < bytes.len() - 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_recovery_at_last_intact_frame() {
        let dir = scratch("rot");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1, 2]]).unwrap();
        wal.append("b", &[vec![3, 4]]).unwrap();
        drop(wal);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x04; // bit rot inside the second frame's payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Wal::open(&dir, Durability::Fast).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_is_corrupt_index() {
        let dir = scratch("hdr");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"garbage!").unwrap();
        match Wal::open(&dir, Durability::Fast) {
            Err(QueryError::CorruptIndex(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
