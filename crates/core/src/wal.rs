//! A position-addressed, checksummed **write-ahead log** for append
//! batches — the journal `cinct serve` writes before acking and the
//! replication log followers pull from.
//!
//! `cinct serve` journals every `/v1/append` batch here *before* acking
//! it, so an acknowledged append survives `kill -9` — on the next start
//! the server replays the log into the reopened corpus, which only knows
//! about batches that made it into a [`ShardedCinct::save_dir`] manifest.
//!
//! Since PR 9 the log is also the **replication stream**: every record
//! carries a stable sequence number assigned at append time, and
//! [`Wal::read_from`] streams records at-or-after any position — that is
//! the byte source behind the primary's `/repl/wal?from=seq` endpoint.
//! A successful save no longer truncates history out from under a
//! lagging follower; it [`Wal::retire`]s the active segment — seals it
//! under a position-stamped name — and starts a fresh active segment.
//! Sealed segments are garbage-collected by [`Wal::reclaim`] only once
//! every registered follower has passed them.
//!
//! # On-disk format (version 2)
//!
//! The **active segment** is `wal.cinct` inside the corpus directory;
//! **sealed segments** are `wal-<base-seq>.cinct` (20-digit zero-padded
//! base, so lexical order is sequence order). Every segment:
//!
//! ```text
//! [u64 magic|version][u64 base_seq]                        16-byte header
//! [u64 seq][u64 len][u64 fnv64(payload)][payload]          record base_seq
//! [u64 seq][u64 len][u64 fnv64(payload)][payload]          record base_seq+1
//! ...
//! ```
//!
//! A payload is the idempotency key (a `Vec<u8>` in [`Persist`] layout)
//! followed by the batch (`u64` count, then each trajectory as a
//! `Vec<u32>`). Records are framed independently and stamped with their
//! sequence number, which must run contiguously from the segment's
//! `base_seq` — recovery never needs to trust anything past the last
//! intact, in-sequence frame. Record payloads are capped at
//! [`MAX_RECORD_BYTES`]: a corrupt or hostile length word is detected
//! *before* any length-driven allocation, so bit rot yields
//! `CorruptIndex` (or a dropped tail), never an OOM abort.
//!
//! # Crash semantics
//!
//! The only artifact a crash mid-append can leave in the **active**
//! segment is a torn tail: a final frame with a short body, an over-cap
//! length word, an out-of-sequence stamp, or a checksum mismatch. That
//! record was never acknowledged (the ack happens after the durable
//! append returns), so [`Wal::open`] drops it — it truncates the file
//! back to the last intact frame and counts `cinct_wal_torn_tail_total`.
//! A damaged *header* is not recoverable and fails the open.
//!
//! **Sealed** segments were fsynced before the seal rename, so any
//! defect found in one is bit rot, not a crash artifact —
//! [`Wal::read_from`] fails loudly with `CorruptIndex` instead of
//! silently serving a truncated stream to a follower.
//!
//! A crash between the seal rename and the creation of the fresh active
//! segment leaves sealed history but no `wal.cinct`; the next open
//! rebuilds an empty active segment based at the end of the newest
//! sealed segment, so positions stay contiguous.
//!
//! Appends and seals go through [`crate::faultio`], so the crash-matrix
//! tests drive simulated power loss through every write, fsync, and
//! rename in here exactly like they do for `save_dir`.
//!
//! [`ShardedCinct::save_dir`]: crate::shard::ShardedCinct::save_dir

use crate::faultio;
use crate::store::{fnv64, fsync_err, io_err, Durability};
use cinct_fmindex::QueryError;
use cinct_succinct::serial::{read_usize, write_usize, Persist};
use std::fs::{File, OpenOptions};
use std::io::{Cursor, Seek, SeekFrom};
use std::path::{Path as FsPath, PathBuf};

/// The active journal segment inside a sharded-corpus directory.
pub const WAL_FILE: &str = "wal.cinct";

/// Hard cap on one record's payload bytes, enforced at append and at
/// every read. A length word above this is corruption by definition —
/// readers reject it before allocating, so a flipped bit in a length
/// prefix can never drive a multi-gigabyte allocation.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// WAL magic prefix ("CINCWL" as bytes, low 16 bits = format version).
const WAL_PREFIX: u64 = 0x4349_4e43_574c_0000;
/// Current WAL format version (2 = position-addressed segments).
const WAL_VERSION: u64 = 2;
/// Bytes of header before the first record: magic|version, base_seq.
const HEADER_LEN: u64 = 16;
/// Bytes of frame header before the payload: seq, len, checksum.
const FRAME_HEADER: usize = 24;

/// Name of the sealed segment whose first record is `base_seq`.
pub fn segment_file_name(base_seq: u64) -> String {
    format!("wal-{base_seq:020}.cinct")
}

/// One journaled append: its position in the replication stream, its
/// idempotency key (empty if the client sent none), and the batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Stable sequence number, assigned at append and never reused.
    pub seq: u64,
    /// Client-supplied idempotency key, `""` for unkeyed appends.
    pub key: String,
    /// The appended trajectories, in batch order.
    pub batch: Vec<Vec<u32>>,
}

/// What [`Wal::read_from`] found at a requested position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRead {
    /// Every retained record at-or-after the requested position, in
    /// sequence order (empty if the position is the log's tip).
    Records(Vec<WalRecord>),
    /// The requested position predates the oldest retained segment —
    /// the history was reclaimed. The reader must bootstrap from a
    /// snapshot instead; `oldest` is the first position still served.
    Compacted {
        /// First sequence number still retained on disk.
        oldest: u64,
    },
}

/// An open append journal / replication log. Obtain one (plus any
/// records a previous process journaled but never folded into a
/// manifest) with [`Wal::open`]; journal with [`Wal::append`] before
/// acknowledging; call [`Wal::retire`] once a successful `save_dir` has
/// made the journaled batches durable in the manifest; stream history
/// to followers with [`Wal::read_from`] and garbage-collect segments
/// they have passed with [`Wal::reclaim`].
pub struct Wal {
    file: File,
    path: PathBuf,
    dir: PathBuf,
    durability: Durability,
    /// Records in the active segment (journaled, not yet in a manifest).
    pending: usize,
    /// First sequence number of the active segment.
    base_seq: u64,
    /// Sequence number the next append will be stamped with.
    next_seq: u64,
    /// Set after a failed append/retire: the file tail is no longer
    /// trusted, so further appends are refused until a reopen re-walks
    /// the frames.
    poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("durability", &self.durability)
            .field("pending", &self.pending)
            .field("base_seq", &self.base_seq)
            .field("next_seq", &self.next_seq)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

/// What one pass over a segment's bytes found.
struct SegmentScan {
    /// The segment's `base_seq` header field.
    base: u64,
    /// Every intact, in-sequence record, in order.
    records: Vec<WalRecord>,
    /// Byte offset just past the last intact frame.
    intact_end: usize,
    /// Why the walk stopped early, if it did not consume every byte.
    defect: Option<String>,
}

/// Walk one segment: header checks are hard errors (`CorruptIndex`),
/// frame defects stop the walk and are reported in
/// [`SegmentScan::defect`] — the *caller* decides whether a defect is a
/// droppable torn tail (active segment) or fatal rot (sealed segment).
fn walk_segment(bytes: &[u8]) -> Result<SegmentScan, QueryError> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(QueryError::CorruptIndex(
            "WAL segment shorter than its header".into(),
        ));
    }
    let magic = u64::from_le_bytes(bytes[..8].try_into().expect("length checked"));
    if magic & !0xffff != WAL_PREFIX {
        return Err(QueryError::CorruptIndex(
            "not a CiNCT WAL (bad magic)".into(),
        ));
    }
    if magic & 0xffff != WAL_VERSION {
        return Err(QueryError::CorruptIndex(format!(
            "unsupported WAL version {} (this build reads {WAL_VERSION})",
            magic & 0xffff
        )));
    }
    let base = u64::from_le_bytes(bytes[8..16].try_into().expect("length checked"));
    let mut records = Vec::new();
    let mut off = HEADER_LEN as usize;
    let mut defect = None;
    loop {
        if bytes.len() - off < FRAME_HEADER {
            if off != bytes.len() {
                defect = Some("short frame header".into());
            }
            break;
        }
        let seq = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
        let stored = u64::from_le_bytes(bytes[off + 16..off + 24].try_into().unwrap());
        // Reject the length word *before* using it for anything — this
        // is the bound that keeps a flipped bit from looking like a
        // 2^60-byte record.
        if len > MAX_RECORD_BYTES as u64 {
            defect = Some(format!(
                "record length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"
            ));
            break;
        }
        let end = off + FRAME_HEADER + len as usize;
        if end > bytes.len() {
            defect = Some("short frame body".into());
            break;
        }
        if seq != base + records.len() as u64 {
            defect = Some(format!(
                "sequence discontinuity: frame stamped {seq}, expected {}",
                base + records.len() as u64
            ));
            break;
        }
        let payload = &bytes[off + FRAME_HEADER..end];
        if fnv64(payload) != stored {
            defect = Some("payload checksum mismatch".into());
            break;
        }
        let Ok(record) = parse_payload(seq, payload) else {
            defect = Some("payload layout invalid".into());
            break;
        };
        records.push(record);
        off = end;
    }
    Ok(SegmentScan {
        base,
        records,
        intact_end: off,
        defect,
    })
}

/// Sealed segments in `dir`, as `(base_seq, path)` sorted by position.
fn sealed_segments(dir: &FsPath) -> Result<Vec<(u64, PathBuf)>, QueryError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)
        .map_err(|e| io_err(dir, e))?
        .flatten()
    {
        let name = entry.file_name().to_string_lossy().into_owned();
        let base = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".cinct"))
            .and_then(|s| s.parse::<u64>().ok());
        if let Some(base) = base {
            out.push((base, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

impl Wal {
    /// Open (or create) the journal in corpus directory `dir`, returning
    /// the writer plus every intact record a previous process journaled
    /// but never folded into a manifest — the caller replays those into
    /// its freshly opened corpus, in order, before serving.
    ///
    /// A torn tail (the one artifact of a crash mid-append) is dropped
    /// and the file truncated back to its last intact frame; a corrupt
    /// header is `CorruptIndex`. Sealed segments are left alone — they
    /// hold already-saved history kept for lagging followers.
    pub fn open(
        dir: impl AsRef<FsPath>,
        durability: Durability,
    ) -> Result<(Wal, Vec<WalRecord>), QueryError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        // The manifest's absorbed-position stamp (written by
        // `ShardedCinct::save_dir_at`) closes two crash windows no
        // segment-local information can: a crash *between* the manifest
        // rename and the WAL retire leaves absorbed records in the
        // active segment (they must not replay — the manifest already
        // holds them), and a crash mid-snapshot-bootstrap can leave the
        // whole log *behind* the installed corpus (its stale history
        // must not replay either — the log re-bases at the manifest's
        // position instead).
        let absorbed = crate::store::manifest_wal_position(dir).unwrap_or(0);
        let mut wal = Wal {
            file,
            path: path.clone(),
            dir: dir.to_path_buf(),
            durability,
            pending: 0,
            base_seq: 0,
            next_seq: 0,
            poisoned: false,
        };
        // A file shorter than the header can only mean "never existed"
        // or "crashed while being created" (the header is written —
        // durably — before the first append can ack anything), so both
        // bootstrap a fresh active segment. Its base is the end of the
        // newest sealed segment, if any: a crash between the seal
        // rename and the fresh-active create must not reset positions.
        let fresh = wal.file.metadata().map_err(|e| io_err(&path, e))?.len() < HEADER_LEN;
        if fresh {
            let base = match sealed_segments(dir)?.last() {
                Some((base, sealed)) => {
                    let bytes = faultio::read(sealed).map_err(|e| io_err(sealed, e))?;
                    let scan = walk_segment(&bytes)?;
                    if let Some(defect) = scan.defect {
                        return Err(QueryError::CorruptIndex(format!(
                            "{}: sealed WAL segment damaged: {defect}",
                            sealed.display()
                        )));
                    }
                    *base + scan.records.len() as u64
                }
                None => 0,
            };
            if absorbed > base {
                // The manifest is ahead of every retained segment: a
                // snapshot bootstrap crashed before re-basing the log.
                // Its history is obsolete — start over at the position
                // the installed corpus absorbs.
                return Ok((Wal::create_at(dir, durability, absorbed)?, Vec::new()));
            }
            wal.write_fresh_header(base)?;
            return Ok((wal, Vec::new()));
        }
        let bytes = faultio::read(&path).map_err(|e| io_err(&path, e))?;
        let scan = walk_segment(&bytes)?;
        if scan.intact_end < bytes.len() {
            // Everything past the last intact frame was never acked (the
            // ack follows the durable append) — drop it.
            crate::metrics::store().wal_torn_tail.inc();
            wal.file
                .set_len(scan.intact_end as u64)
                .map_err(|e| io_err(&path, e))?;
        }
        wal.file
            .seek(SeekFrom::Start(scan.intact_end as u64))
            .map_err(|e| io_err(&path, e))?;
        wal.base_seq = scan.base;
        wal.next_seq = scan.base + scan.records.len() as u64;
        if absorbed > wal.next_seq {
            // See above: the manifest outran the whole log (crashed
            // snapshot bootstrap). Re-base rather than replay.
            return Ok((Wal::create_at(dir, durability, absorbed)?, Vec::new()));
        }
        // Records the manifest already absorbed stay on disk as
        // replication history but must not replay into the corpus —
        // that save committed, only its retire was lost.
        let replay: Vec<WalRecord> = scan
            .records
            .into_iter()
            .filter(|r| r.seq >= absorbed)
            .collect();
        wal.pending = replay.len();
        crate::metrics::store()
            .wal_replayed
            .add(replay.len() as u64);
        Ok((wal, replay))
    }

    /// Create a fresh journal in `dir` positioned at `base_seq`,
    /// deleting any existing segments. This is the follower's
    /// snapshot-bootstrap path: the snapshot absorbs every record below
    /// `base_seq`, so local history (from a previous life as primary or
    /// as a stale follower) is obsolete and the next pulled record is
    /// exactly `base_seq`.
    pub fn create_at(
        dir: impl AsRef<FsPath>,
        durability: Durability,
        base_seq: u64,
    ) -> Result<Wal, QueryError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        for (_, sealed) in sealed_segments(dir)? {
            std::fs::remove_file(&sealed).map_err(|e| io_err(&sealed, e))?;
        }
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let mut wal = Wal {
            file,
            path,
            dir: dir.to_path_buf(),
            durability,
            pending: 0,
            base_seq,
            next_seq: base_seq,
            poisoned: false,
        };
        wal.write_fresh_header(base_seq)?;
        Ok(wal)
    }

    /// Write the 16-byte header of an empty active segment, durably, and
    /// position the writer at `base` / `next = base`.
    fn write_fresh_header(&mut self, base: u64) -> Result<(), QueryError> {
        self.file.set_len(0).map_err(|e| io_err(&self.path, e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&(WAL_PREFIX | WAL_VERSION).to_le_bytes());
        header.extend_from_slice(&base.to_le_bytes());
        // Header now, so recovery can always tell "new journal" from
        // "damaged journal"; durably, so the file itself survives.
        faultio::append_file(&mut self.file, &header).map_err(|e| io_err(&self.path, e))?;
        if self.durability == Durability::Durable {
            faultio::sync_file(&self.file).map_err(|e| fsync_err(&self.path, e))?;
            faultio::sync_path(&self.dir).map_err(|e| fsync_err(&self.dir, e))?;
        }
        self.pending = 0;
        self.base_seq = base;
        self.next_seq = base;
        Ok(())
    }

    /// Journal one append **durably** (write + fsync under
    /// [`Durability::Durable`]), stamped with the next sequence number,
    /// which is returned. Only after this returns may the batch be
    /// acknowledged. Errors poison the writer: the on-disk tail is no
    /// longer trusted, so every later append fails until a reopen.
    pub fn append(&mut self, key: &str, batch: &[Vec<u32>]) -> Result<u64, QueryError> {
        self.append_at(self.next_seq, key, batch)
    }

    /// Journal one record at an explicit position — the follower's
    /// apply path, which re-journals records under the *primary's*
    /// sequence numbers so a restarted follower knows exactly where to
    /// resume pulling. `seq` must be the log's next position; anything
    /// else would tear a hole in the stream and is refused.
    pub fn append_at(
        &mut self,
        seq: u64,
        key: &str,
        batch: &[Vec<u32>],
    ) -> Result<u64, QueryError> {
        let _span = cinct_obs::Span::enter(&crate::metrics::store().wal_append_ns);
        if self.poisoned {
            return Err(QueryError::Io(format!(
                "{}: WAL poisoned by an earlier write failure; reopen to recover",
                self.path.display()
            )));
        }
        if seq != self.next_seq {
            return Err(QueryError::InvalidInput(format!(
                "WAL append at sequence {seq} would tear the stream (next is {})",
                self.next_seq
            )));
        }
        let mut payload: Vec<u8> = Vec::new();
        let w = &mut payload as &mut dyn std::io::Write;
        key.as_bytes().to_vec().persist(w)?;
        write_usize(w, batch.len())?;
        for traj in batch {
            traj.persist(w)?;
        }
        if payload.len() > MAX_RECORD_BYTES {
            return Err(QueryError::InvalidInput(format!(
                "append batch serializes to {} bytes, over the {MAX_RECORD_BYTES}-byte WAL record cap",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&fnv64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(e) = faultio::append_file(&mut self.file, &frame) {
            self.poisoned = true;
            return Err(io_err(&self.path, e));
        }
        if self.durability == Durability::Durable {
            if let Err(e) = faultio::sync_file(&self.file) {
                self.poisoned = true;
                return Err(fsync_err(&self.path, e));
            }
        }
        self.pending += 1;
        self.next_seq = seq + 1;
        crate::metrics::store().wal_appends.inc();
        Ok(seq)
    }

    /// Retire the active segment (a successful `save_dir` has folded its
    /// records into the manifest): seal it under a position-stamped name
    /// and start a fresh, empty active segment at the current position.
    /// Unlike the old truncate-on-save, the records stay on disk for
    /// lagging followers until [`Wal::reclaim`] decides they are safe to
    /// drop. A no-op when nothing is pending. Errors poison the writer.
    pub fn retire(&mut self) -> Result<(), QueryError> {
        if self.poisoned {
            return Err(QueryError::Io(format!(
                "{}: WAL poisoned by an earlier write failure; reopen to recover",
                self.path.display()
            )));
        }
        if self.pending == 0 {
            return Ok(());
        }
        // Seal order: make the content durable, publish it under the
        // sealed name, make the rename durable, then build the fresh
        // active segment. A crash anywhere in between leaves either the
        // old active segment (records replay: harmless, they are
        // idempotent-keyed) or sealed history + a missing/short active
        // file, which `open` rebuilds at the right base.
        if self.durability == Durability::Durable {
            if let Err(e) = faultio::sync_file(&self.file) {
                self.poisoned = true;
                return Err(fsync_err(&self.path, e));
            }
        }
        let sealed = self.dir.join(segment_file_name(self.base_seq));
        if let Err(e) = faultio::rename(&self.path, &sealed) {
            self.poisoned = true;
            return Err(io_err(&self.path, e));
        }
        if self.durability == Durability::Durable {
            if let Err(e) = faultio::sync_path(&self.dir) {
                self.poisoned = true;
                return Err(fsync_err(&self.dir, e));
            }
        }
        let file = match OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&self.path)
        {
            Ok(f) => f,
            Err(e) => {
                self.poisoned = true;
                return Err(io_err(&self.path, e));
            }
        };
        self.file = file;
        let base = self.next_seq;
        if let Err(e) = self.write_fresh_header(base) {
            self.poisoned = true;
            return Err(e);
        }
        crate::metrics::store().wal_truncations.inc();
        Ok(())
    }

    /// Every retained record with sequence `>= from`, across sealed
    /// segments and the active one, in order — or
    /// [`WalRead::Compacted`] if `from` predates the oldest retained
    /// segment (the reader must snapshot-bootstrap instead). Damage in a
    /// *sealed* segment is `CorruptIndex`: sealed bytes were fsynced
    /// before the seal, so a defect is rot, and serving a silently
    /// truncated stream would diverge the follower.
    pub fn read_from(&self, from: u64) -> Result<WalRead, QueryError> {
        let sealed = sealed_segments(&self.dir)?;
        let oldest = sealed.first().map(|(b, _)| *b).unwrap_or(self.base_seq);
        if from < oldest {
            return Ok(WalRead::Compacted { oldest });
        }
        let mut out = Vec::new();
        for (i, (base, path)) in sealed.iter().enumerate() {
            // A sealed segment's range ends where the next segment
            // begins (segments are born contiguous at retire time).
            let end = sealed.get(i + 1).map(|(b, _)| *b).unwrap_or(self.base_seq);
            if end <= from {
                continue;
            }
            let bytes = faultio::read(path).map_err(|e| io_err(path, e))?;
            let scan = walk_segment(&bytes)
                .map_err(|e| QueryError::CorruptIndex(format!("{}: {e}", path.display())))?;
            let complete = scan.defect.is_none() && scan.intact_end == bytes.len();
            if !complete || scan.base != *base || scan.base + scan.records.len() as u64 != end {
                return Err(QueryError::CorruptIndex(format!(
                    "{}: sealed WAL segment damaged: {}",
                    path.display(),
                    scan.defect.unwrap_or_else(|| format!(
                        "holds [{}, {}), expected [{base}, {end})",
                        scan.base,
                        scan.base + scan.records.len() as u64
                    ))
                )));
            }
            out.extend(scan.records.into_iter().filter(|r| r.seq >= from));
        }
        if self.next_seq > from {
            let bytes = faultio::read(&self.path).map_err(|e| io_err(&self.path, e))?;
            let scan = walk_segment(&bytes)?;
            // The active tail past `pending` intact frames is un-acked
            // garbage at worst; serve only what the writer has acked.
            out.extend(
                scan.records
                    .into_iter()
                    .filter(|r| r.seq >= from && r.seq < self.next_seq),
            );
        }
        Ok(WalRead::Records(out))
    }

    /// Delete sealed segments every consumer has passed: a segment is
    /// reclaimed only if its entire range lies below `min_seq` (the
    /// minimum over all registered followers' positions — callers that
    /// reclaim ahead of a live follower force it into a snapshot
    /// bootstrap, which is exactly what [`WalRead::Compacted`] signals).
    /// Returns how many segments were removed. Only a contiguous prefix
    /// is ever reclaimed, so retained history has no holes.
    pub fn reclaim(&mut self, min_seq: u64) -> Result<usize, QueryError> {
        let sealed = sealed_segments(&self.dir)?;
        let mut removed = 0usize;
        for (i, (_, path)) in sealed.iter().enumerate() {
            let end = sealed.get(i + 1).map(|(b, _)| *b).unwrap_or(self.base_seq);
            if end > min_seq {
                break;
            }
            std::fs::remove_file(path).map_err(|e| io_err(path, e))?;
            removed += 1;
        }
        if removed > 0 && self.durability == Durability::Durable {
            faultio::sync_path(&self.dir).map_err(|e| fsync_err(&self.dir, e))?;
        }
        Ok(removed)
    }

    /// Oldest sequence number still retained on disk (the earliest
    /// position [`Wal::read_from`] can serve without `Compacted`).
    pub fn oldest_retained(&self) -> Result<u64, QueryError> {
        let sealed = sealed_segments(&self.dir)?;
        Ok(sealed.first().map(|(b, _)| *b).unwrap_or(self.base_seq))
    }

    /// Number of sealed segments currently on disk.
    pub fn sealed_count(&self) -> Result<usize, QueryError> {
        Ok(sealed_segments(&self.dir)?.len())
    }

    /// Records currently journaled but not yet folded into a manifest.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Sequence number the next append will receive (= one past the
    /// last record in the log; equals `base_seq` on an empty log).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// First sequence number of the active segment — every record below
    /// it has been folded into a manifest by a successful save.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The active journal file's path.
    pub fn path(&self) -> &FsPath {
        &self.path
    }

    /// The durability mode this log was opened with.
    pub fn durability(&self) -> Durability {
        self.durability
    }
}

fn parse_payload(seq: u64, payload: &[u8]) -> Result<WalRecord, QueryError> {
    let mut cur = Cursor::new(payload);
    let r = &mut cur as &mut dyn std::io::Read;
    let key_bytes: Vec<u8> = Persist::restore(r)?;
    let key = String::from_utf8(key_bytes)
        .map_err(|_| QueryError::CorruptIndex("WAL record key is not UTF-8".into()))?;
    let n = read_usize(r)?;
    let mut batch = Vec::with_capacity(n.min(payload.len()));
    for _ in 0..n {
        batch.push(Persist::restore(r)?);
    }
    Ok(WalRecord { seq, key, batch })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cinct-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn records(read: WalRead) -> Vec<WalRecord> {
        match read {
            WalRead::Records(r) => r,
            other => panic!("expected records, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_and_retire() {
        let dir = scratch("roundtrip");
        let (mut wal, replay) = Wal::open(&dir, Durability::Durable).unwrap();
        assert!(replay.is_empty());
        assert_eq!(wal.append("k1", &[vec![0, 1, 2], vec![3]]).unwrap(), 0);
        assert_eq!(wal.append("", &[vec![4, 5]]).unwrap(), 1);
        assert_eq!(wal.pending(), 2);
        assert_eq!(wal.next_seq(), 2);
        drop(wal);
        let (mut wal, replay) = Wal::open(&dir, Durability::Durable).unwrap();
        assert_eq!(
            replay,
            vec![
                WalRecord {
                    seq: 0,
                    key: "k1".into(),
                    batch: vec![vec![0, 1, 2], vec![3]],
                },
                WalRecord {
                    seq: 1,
                    key: "".into(),
                    batch: vec![vec![4, 5]],
                },
            ]
        );
        wal.retire().unwrap();
        assert_eq!(wal.pending(), 0);
        assert_eq!(wal.next_seq(), 2);
        drop(wal);
        // After a retire nothing replays, but history remains readable
        // and positions keep counting from where they were.
        let (mut wal, replay) = Wal::open(&dir, Durability::Durable).unwrap();
        assert!(replay.is_empty());
        assert_eq!(wal.next_seq(), 2);
        assert_eq!(records(wal.read_from(0).unwrap()).len(), 2);
        assert_eq!(wal.append("k2", &[vec![6]]).unwrap(), 2);
        let tail = records(wal.read_from(1).unwrap());
        assert_eq!(
            tail.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2],
            "read_from crosses the sealed/active boundary"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = scratch("torn");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1, 2]]).unwrap();
        wal.append("b", &[vec![3, 4]]).unwrap();
        drop(wal);
        // Chop mid-way through the second frame.
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].key, "a");
        assert_eq!(wal.next_seq(), 1);
        // The torn bytes are gone from disk too.
        assert!(std::fs::read(&path).unwrap().len() < bytes.len() - 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_recovery_at_last_intact_frame() {
        let dir = scratch("rot");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1, 2]]).unwrap();
        wal.append("b", &[vec![3, 4]]).unwrap();
        drop(wal);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x04; // bit rot inside the second frame's payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&dir, Durability::Fast).unwrap();
        assert_eq!(replay.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_is_corrupt_index() {
        let dir = scratch("hdr");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"garbage! garbage").unwrap();
        match Wal::open(&dir, Durability::Fast) {
            Err(QueryError::CorruptIndex(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite: a bit-flipped length prefix in the *active* tail is
    /// indistinguishable from a torn write — the record (and anything
    /// after it) is dropped, with no length-driven allocation.
    #[test]
    fn bit_flipped_length_prefix_in_active_tail_is_dropped_not_allocated() {
        let dir = scratch("lenflip-active");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1, 2]]).unwrap();
        wal.append("b", &[vec![3, 4]]).unwrap();
        drop(wal);
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        // Find the second frame: header + frame0 (24 + payload) …
        // easier: flip the top bit of the *last* frame's length word by
        // scanning from the front.
        let first_payload = bytes.len() - HEADER_LEN as usize - 2 * FRAME_HEADER;
        assert_eq!(first_payload % 2, 0);
        let frame1 = HEADER_LEN as usize + FRAME_HEADER + first_payload / 2;
        let mut bytes = bytes;
        bytes[frame1 + 8 + 7] |= 0x20; // length word now claims ~2^61 bytes
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
        assert_eq!(replay.len(), 1, "over-cap frame and its tail dropped");
        assert_eq!(wal.next_seq(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite: the same flip in a *sealed* segment is rot, not a torn
    /// tail — `read_from` refuses with `CorruptIndex` instead of
    /// serving a truncated stream (and never allocates by the bogus
    /// length either).
    #[test]
    fn bit_flipped_length_prefix_in_sealed_segment_is_corrupt_index() {
        let dir = scratch("lenflip-sealed");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1, 2]]).unwrap();
        wal.retire().unwrap();
        let sealed = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&sealed).unwrap();
        let len_word = HEADER_LEN as usize + 8;
        bytes[len_word + 7] |= 0x20;
        std::fs::write(&sealed, &bytes).unwrap();
        match wal.read_from(0) {
            Err(QueryError::CorruptIndex(msg)) => {
                assert!(msg.contains("cap") || msg.contains("damaged"), "{msg}")
            }
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversize_append_is_refused() {
        let dir = scratch("oversize");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        // One trajectory of MAX_RECORD_BYTES/4 u32s overshoots the cap
        // once framed. Don't materialize 64 MiB of zeros per element —
        // a single flat vec is cheap.
        let big = vec![0u32; MAX_RECORD_BYTES / 4];
        match wal.append("big", std::slice::from_ref(&big)) {
            Err(QueryError::InvalidInput(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        // The refused append never touched the file: the log still acks.
        assert_eq!(wal.append("ok", &[vec![1]]).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reclaims_passed_segments_and_signals_bootstrap() {
        let dir = scratch("reclaim");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1]]).unwrap(); // seq 0
        wal.retire().unwrap(); // sealed [0,1)
        wal.append("b", &[vec![2]]).unwrap(); // seq 1
        wal.append("c", &[vec![3]]).unwrap(); // seq 2
        wal.retire().unwrap(); // sealed [1,3)
        wal.append("d", &[vec![4]]).unwrap(); // seq 3, active
        assert_eq!(wal.sealed_count().unwrap(), 2);
        assert_eq!(wal.oldest_retained().unwrap(), 0);

        // A follower at seq 1 blocks reclaiming the second segment.
        assert_eq!(wal.reclaim(1).unwrap(), 1);
        assert_eq!(wal.oldest_retained().unwrap(), 1);
        let got = records(wal.read_from(1).unwrap());
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3]);

        // A reader below the retained floor is told to bootstrap.
        assert_eq!(wal.read_from(0).unwrap(), WalRead::Compacted { oldest: 1 });

        // Once every follower passes seq 3, all sealed history can go.
        assert_eq!(wal.reclaim(3).unwrap(), 1);
        assert_eq!(wal.sealed_count().unwrap(), 0);
        assert_eq!(wal.oldest_retained().unwrap(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_at_wipes_history_and_positions_the_log() {
        let dir = scratch("create-at");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1]]).unwrap();
        wal.retire().unwrap();
        wal.append("b", &[vec![2]]).unwrap();
        drop(wal);
        // Snapshot bootstrap: the snapshot absorbed everything < 7.
        let mut wal = Wal::create_at(&dir, Durability::Fast, 7).unwrap();
        assert_eq!(wal.next_seq(), 7);
        assert_eq!(wal.sealed_count().unwrap(), 0);
        assert_eq!(wal.append_at(7, "x", &[vec![9]]).unwrap(), 7);
        // Out-of-order positions are refused — no holes in the stream.
        assert!(matches!(
            wal.append_at(9, "y", &[vec![9]]),
            Err(QueryError::InvalidInput(_))
        ));
        drop(wal);
        let (wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].seq, 7);
        assert_eq!(wal.next_seq(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_seal_and_fresh_active_keeps_positions_contiguous() {
        let dir = scratch("seal-crash");
        let (mut wal, _) = Wal::open(&dir, Durability::Fast).unwrap();
        wal.append("a", &[vec![1]]).unwrap();
        wal.append("b", &[vec![2]]).unwrap();
        wal.retire().unwrap();
        drop(wal);
        // Simulate the crash window: the fresh active segment never
        // made it to disk, only the sealed history exists.
        std::fs::remove_file(dir.join(WAL_FILE)).unwrap();
        let (wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
        assert!(replay.is_empty(), "sealed records are saved, not pending");
        assert_eq!(wal.next_seq(), 2, "positions resume after sealed history");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
