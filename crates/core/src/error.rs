//! The query error taxonomy, re-exported at the point most callers look
//! for it.
//!
//! [`QueryError`] is *defined* in `cinct_fmindex` — the crate that owns
//! the shared [`cinct_fmindex::PathQuery`] trait, below every backend in
//! the dependency graph — and re-exported here so `cinct::error::QueryError`
//! works for code that only depends on the CiNCT crate.
//!
//! # The taxonomy at a glance
//!
//! | Variant | Meaning | Typical source |
//! |---------|---------|----------------|
//! | `EmptyPattern` | query path has no edges | occurrence/strict-path queries, CLI path parsing |
//! | `UnknownEdge` | edge ID outside the indexed network | any validated query |
//! | `LocateUnsupported` | index built without SA samples | `occurrences` on a count-only index |
//! | `CorruptIndex` | persisted index failed an invariant | [`crate::CinctIndex::read_from`] |
//! | `InvalidInput` | input data failed validation | [`crate::text_io`], [`crate::TimestampedTrajectory::validate`] |
//! | `Io` | underlying stream failed | persistence, text I/O |
//!
//! "Path not present" is deliberately **not** in this list: absent paths
//! are `None` / empty iterators, never errors.

pub use cinct_fmindex::error::QueryError;
