//! Relative movement labeling (RML, paper §III-B and §III-C1).
//!
//! Given the ET-graph and the BWT `T_bwt`, RML rewrites each BWT symbol `w`
//! at position `j` as the small integer `φ(w|w′)`, where `w′` is the
//! context — the first symbol of the `j`-th sorted rotation, i.e. the
//! symbol whose `C`-range contains `j`. Because `φ(·|w′)` is one-to-one per
//! context (the labeling requirement), PseudoRank can later invert the
//! mapping.
//!
//! Labeling strategies (the Fig. 14 ablation):
//! * [`LabelingStrategy::BigramSorted`] — most-frequent transition gets
//!   label 1 (entropy-optimal, Theorem 3);
//! * [`LabelingStrategy::Random`] — random permutations per context
//!   (the paper's "random sorting" strawman).

use crate::et_graph::EtGraph;
use cinct_bwt::CArray;
use cinct_succinct::serial::{read_u64, write_u64, Persist};

/// How labels are assigned within each out-list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelingStrategy {
    /// Descending bigram frequency — the paper's optimal strategy.
    BigramSorted,
    /// Deterministic pseudo-random permutation per vertex, seeded; the
    /// Fig. 14 baseline showing that the ordering matters.
    Random {
        /// Seed for the per-vertex permutations.
        seed: u64,
    },
}

/// The RML function φ, realised as an [`EtGraph`] whose out-lists are in
/// label order.
#[derive(Clone, Debug)]
pub struct Rml {
    graph: EtGraph,
    strategy: LabelingStrategy,
}

impl Rml {
    /// Build φ from a trajectory string (bigram counting + ordering).
    pub fn from_text(text: &[u32], sigma: usize, strategy: LabelingStrategy) -> Self {
        let graph = EtGraph::from_text(text, sigma);
        Self::with_strategy(graph, strategy)
    }

    /// Build φ straight from the BWT and its context structure. Every BWT
    /// position `j` in context block `w′` carries the cyclic bigram
    /// `(T_bwt[j], w′)`, so per-block symbol tallies reproduce exactly the
    /// bigram counts of [`Rml::from_text`] (cyclic wrap included) — with
    /// one dense-scratch pass instead of a hashed map over `n` bigrams.
    /// The optimized construction pipeline rides this; the resulting
    /// labeling is **identical** to the text path's (pinned by tests).
    pub fn from_bwt(tbwt: &[u32], c: &CArray, strategy: LabelingStrategy) -> Self {
        let sigma = c.sigma();
        let mut scratch = vec![0u64; sigma];
        let mut touched: Vec<u32> = Vec::new();
        let mut edges: Vec<((u32, u32), u64)> = Vec::new();
        for w_prime in 0..sigma as u32 {
            for j in c.symbol_range(w_prime) {
                let w = tbwt[j];
                if scratch[w as usize] == 0 {
                    touched.push(w);
                }
                scratch[w as usize] += 1;
            }
            for &w in &touched {
                edges.push(((w_prime, w), scratch[w as usize]));
                scratch[w as usize] = 0;
            }
            touched.clear();
        }
        let graph = EtGraph::from_bigrams(edges.into_iter(), sigma);
        Self::with_strategy(graph, strategy)
    }

    /// Apply the labeling strategy to a frequency-sorted graph.
    fn with_strategy(mut graph: EtGraph, strategy: LabelingStrategy) -> Self {
        if let LabelingStrategy::Random { seed } = strategy {
            // Fisher–Yates with a splitmix-style stream per vertex.
            graph.permute_labels(|v, list| {
                let mut state = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(v as u64 + 1));
                let mut next = || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                let mut p: Vec<usize> = (0..list.len()).collect();
                for i in (1..p.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    p.swap(i, j);
                }
                p
            });
        }
        Self { graph, strategy }
    }

    /// `φ(w|w′)`, or `None` if the transition does not occur in the data.
    #[inline]
    pub fn label(&self, w: u32, w_prime: u32) -> Option<u32> {
        self.graph.label(w, w_prime)
    }

    /// `(φ(w|w′), Z_{w′w})` in one adjacency lookup (the backward-search
    /// step shape; see [`crate::EtGraph::label_and_z`]).
    #[inline]
    pub fn label_and_z(&self, w: u32, w_prime: u32) -> Option<(u32, i64)> {
        self.graph.label_and_z(w, w_prime)
    }

    /// Inverse: the symbol with the given label in context `w′`.
    #[inline]
    pub fn decode(&self, label: u32, w_prime: u32) -> u32 {
        self.graph.decode(label, w_prime)
    }

    /// The labeled BWT `φ(T_bwt)` (paper step 4, Fig. 6(b)): walk the BWT
    /// context block by context block (blocks are the `C`-ranges) and
    /// replace each symbol with its label.
    pub fn label_bwt(&self, bwt: &[u32], c: &CArray) -> Vec<u32> {
        let mut labeled = vec![0u32; bwt.len()];
        for w_prime in 0..c.sigma() as u32 {
            for j in c.symbol_range(w_prime) {
                let w = bwt[j];
                let label = self
                    .label(w, w_prime)
                    .expect("BWT transition must exist in the ET-graph");
                labeled[j] = label;
            }
        }
        labeled
    }

    /// The underlying ET-graph (out-lists in label order).
    pub fn graph(&self) -> &EtGraph {
        &self.graph
    }

    /// Mutable access for the builder (Z-term attachment).
    pub(crate) fn graph_mut(&mut self) -> &mut EtGraph {
        &mut self.graph
    }

    /// Which strategy produced this labeling.
    pub fn strategy(&self) -> LabelingStrategy {
        self.strategy
    }

    /// Histogram of label values over `φ(T_bwt)` — label `k` is stored at
    /// index `k-1`. Used by entropy comparisons (Tables III and V).
    pub fn label_histogram(&self, labeled_bwt: &[u32]) -> Vec<u64> {
        let max = labeled_bwt.iter().copied().max().unwrap_or(1) as usize;
        let mut h = vec![0u64; max];
        for &l in labeled_bwt {
            h[(l - 1) as usize] += 1;
        }
        h
    }
}

impl Persist for Rml {
    fn persist(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        match self.strategy {
            LabelingStrategy::BigramSorted => {
                write_u64(w, 0)?;
                write_u64(w, 0)?;
            }
            LabelingStrategy::Random { seed } => {
                write_u64(w, 1)?;
                write_u64(w, seed)?;
            }
        }
        self.graph.persist(w)
    }

    fn restore(r: &mut dyn std::io::Read) -> std::io::Result<Self> {
        let tag = read_u64(r)?;
        let seed = read_u64(r)?;
        let strategy = match tag {
            0 => LabelingStrategy::BigramSorted,
            1 => LabelingStrategy::Random { seed },
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "unknown labeling strategy tag",
                ))
            }
        };
        Ok(Self {
            graph: EtGraph::restore(r)?,
            strategy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct_bwt::{bwt, entropy_h0, TrajectoryString};

    fn sym(c: char) -> u32 {
        match c {
            '#' => 0,
            '$' => 1,
            c => (c as u32 - 'A' as u32) + 2,
        }
    }

    fn paper_setup() -> (Vec<u32>, usize, Vec<u32>, CArray) {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let ts = TrajectoryString::build(&trajs, 6);
        let (_, tbwt) = bwt(ts.text(), ts.sigma());
        let c = CArray::new(ts.text(), ts.sigma());
        (ts.text().to_vec(), ts.sigma(), tbwt, c)
    }

    #[test]
    fn labeled_bwt_matches_fig6b() {
        // Fig. 6(b): T_bwt = $AAAB DBB CCE $$$ F #  labels to
        //            1 111 2 211 11 2 11 1 1 1  (context blocks #,$,A,B,C,D,E,F)
        let (text, sigma, tbwt, c) = paper_setup();
        let rml = Rml::from_text(&text, sigma, LabelingStrategy::BigramSorted);
        let labeled = rml.label_bwt(&tbwt, &c);
        let expected = vec![1, 1, 1, 1, 2, 2, 1, 1, 1, 1, 2, 1, 1, 1, 1, 1];
        assert_eq!(labeled, expected);
    }

    #[test]
    fn paper_entropy_drop() {
        // §III-B2: H0(T_bwt) = 2.8, H0(φ(T_bwt)) = 0.7.
        let (text, sigma, tbwt, c) = paper_setup();
        let rml = Rml::from_text(&text, sigma, LabelingStrategy::BigramSorted);
        let labeled = rml.label_bwt(&tbwt, &c);
        let h_raw = entropy_h0(&tbwt);
        let h_lab = entropy_h0(&labeled);
        assert!((h_raw - 2.8).abs() < 0.05, "H0(Tbwt)={h_raw}");
        assert!((h_lab - 0.7).abs() < 0.05, "H0(phi)={h_lab}");
    }

    #[test]
    fn labeling_is_one_to_one_per_context() {
        let (text, sigma, _, _) = paper_setup();
        for strategy in [
            LabelingStrategy::BigramSorted,
            LabelingStrategy::Random { seed: 7 },
        ] {
            let rml = Rml::from_text(&text, sigma, strategy);
            for w_prime in 0..sigma as u32 {
                let out = rml.graph().out(w_prime);
                let mut seen = std::collections::HashSet::new();
                for (k, &w) in out.iter().enumerate() {
                    assert_eq!(rml.label(w, w_prime), Some(k as u32 + 1));
                    assert!(seen.insert(w), "duplicate target");
                }
            }
        }
    }

    #[test]
    fn bigram_beats_random_entropy() {
        // Theorem 3 in action on a bigger pseudo-random Markov text.
        let mut x = 3u64;
        let mut body = vec![0u32];
        for _ in 0..30_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let prev = *body.last().unwrap();
            // biased transitions among 3 successors of prev
            let r = (x >> 33) % 10;
            let next = match r {
                0..=6 => (prev * 3 + 1) % 50,
                7..=8 => (prev * 3 + 2) % 50,
                _ => (prev * 3 + 3) % 50,
            };
            body.push(next);
        }
        let ts = TrajectoryString::build(&[body], 50);
        let (_, tbwt) = bwt(ts.text(), ts.sigma());
        let c = CArray::new(ts.text(), ts.sigma());
        let h_of = |strategy| {
            let rml = Rml::from_text(ts.text(), ts.sigma(), strategy);
            entropy_h0(&rml.label_bwt(&tbwt, &c))
        };
        let h_sorted = h_of(LabelingStrategy::BigramSorted);
        // Optimality must hold for any random seed.
        for seed in [1u64, 2, 3] {
            let h_rand = h_of(LabelingStrategy::Random { seed });
            assert!(
                h_sorted <= h_rand + 1e-9,
                "seed {seed}: sorted {h_sorted} > random {h_rand}"
            );
        }
    }

    #[test]
    fn from_bwt_matches_from_text() {
        // The BWT-context construction must reproduce the text-bigram
        // construction exactly — same labels, Z slots, and counts — for
        // both strategies.
        let (text, sigma, tbwt, c) = paper_setup();
        for strategy in [
            LabelingStrategy::BigramSorted,
            LabelingStrategy::Random { seed: 11 },
        ] {
            let a = Rml::from_text(&text, sigma, strategy);
            let b = Rml::from_bwt(&tbwt, &c, strategy);
            assert_eq!(a.graph().num_edges(), b.graph().num_edges());
            for w_prime in 0..sigma as u32 {
                assert_eq!(a.graph().out(w_prime), b.graph().out(w_prime), "{w_prime}");
                for (k, _) in a.graph().out(w_prime).iter().enumerate() {
                    let label = k as u32 + 1;
                    assert_eq!(
                        a.graph().bigram_count(label, w_prime),
                        b.graph().bigram_count(label, w_prime)
                    );
                }
            }
        }
    }

    #[test]
    fn identity_label_roundtrip_over_bwt() {
        let (text, sigma, tbwt, c) = paper_setup();
        let rml = Rml::from_text(&text, sigma, LabelingStrategy::BigramSorted);
        let labeled = rml.label_bwt(&tbwt, &c);
        // Decode every position back using its context.
        for j in 0..tbwt.len() {
            let w_prime = c.symbol_at(j);
            assert_eq!(rml.decode(labeled[j], w_prime), tbwt[j], "j={j}");
        }
    }

    #[test]
    fn label_histogram_sums() {
        let (text, sigma, tbwt, c) = paper_setup();
        let rml = Rml::from_text(&text, sigma, LabelingStrategy::BigramSorted);
        let labeled = rml.label_bwt(&tbwt, &c);
        let hist = rml.label_histogram(&labeled);
        assert_eq!(hist.iter().sum::<u64>() as usize, tbwt.len());
        assert_eq!(hist[0], 13); // thirteen 1-labels in Fig. 6(b)
        assert_eq!(hist[1], 3);
    }

    #[test]
    fn sym_helper_consistency() {
        assert_eq!(sym('#'), 0);
        assert_eq!(sym('$'), 1);
        assert_eq!(sym('A'), 2);
        assert_eq!(sym('F'), 7);
    }
}
