//! `cinct` — command-line interface to the CiNCT trajectory index.
//!
//! Trajectory files are plain text: one trajectory per line, comma- or
//! whitespace-separated edge IDs. Typical session:
//!
//! ```text
//! cinct build  trips.txt  trips.cinct          # build + save an index
//! cinct stats  trips.cinct                     # size breakdown
//! cinct count  trips.cinct  12,13,14           # how many travel 12→13→14?
//! cinct locate trips.cinct  12,13,14           # who, and where (needs --locate at build)
//! cinct get    trips.cinct  7                  # decompress trajectory #7
//! ```

use cinct::text_io::{format_trajectory, parse_path, parse_trajectories};
use cinct::{CinctBuilder, CinctIndex, Path, PathQuery};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  cinct build <trajectories.txt> <index.cinct> [--block-size 15|31|63] [--locate RATE]
              [--threads N]                    N = 0 uses all cores; output is
                                               identical at any thread count
  cinct stats <index.cinct>
  cinct count <index.cinct> <path>          path = comma-separated edge IDs
  cinct locate <index.cinct> <path>
  cinct get <index.cinct> <trajectory-id>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match (cmd.as_str(), args.len()) {
        ("build", n) if n >= 3 => cmd_build(&args[1], &args[2], &args[3..]),
        ("stats", 2) => cmd_stats(&args[1]),
        ("count", 3) => cmd_count(&args[1], &args[2]),
        ("locate", 3) => cmd_locate(&args[1], &args[2]),
        ("get", 3) => cmd_get(&args[1], &args[2]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse a trajectory file via [`cinct::text_io`].
fn read_trajectories(path: &str) -> Result<(Vec<Vec<u32>>, usize), String> {
    let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    parse_trajectories(std::io::BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn load_index(path: &str) -> Result<CinctIndex, String> {
    let mut f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    CinctIndex::read_from(&mut f).map_err(|e| format!("load {path}: {e}"))
}

fn cmd_build(input: &str, output: &str, flags: &[String]) -> Result<(), String> {
    let mut builder = CinctBuilder::new();
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--block-size" => {
                let b: usize = flags
                    .get(i + 1)
                    .ok_or("--block-size needs a value")?
                    .parse()
                    .map_err(|_| "bad --block-size")?;
                builder = builder.block_size(b);
                i += 2;
            }
            "--locate" => {
                let r: usize = flags
                    .get(i + 1)
                    .ok_or("--locate needs a sampling rate")?
                    .parse()
                    .map_err(|_| "bad --locate rate")?;
                builder = builder.locate_sampling(r);
                i += 2;
            }
            "--threads" => {
                let n: usize = flags
                    .get(i + 1)
                    .ok_or("--threads needs a count (0 = all cores)")?
                    .parse()
                    .map_err(|_| "bad --threads count")?;
                builder = builder.threads(n);
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let (trajs, n_edges) = read_trajectories(input)?;
    let t0 = std::time::Instant::now();
    let (index, timings) = builder.build_timed(&trajs, n_edges);
    eprintln!(
        "built in {:.2}s: {} trajectories, {} edges, {:.2} bits/symbol",
        t0.elapsed().as_secs_f64(),
        index.num_trajectories(),
        n_edges,
        index.bits_per_symbol()
    );
    eprintln!("stages: {}", timings.breakdown());
    let mut f = std::fs::File::create(output).map_err(|e| format!("create {output}: {e}"))?;
    index
        .write_to(&mut f)
        .map_err(|e| format!("write {output}: {e}"))?;
    eprintln!("saved to {output}");
    Ok(())
}

fn cmd_stats(path: &str) -> Result<(), String> {
    let idx = load_index(path)?;
    println!("trajectories:     {}", idx.num_trajectories());
    println!("indexed symbols:  {}", idx.text_len());
    println!("network edges:    {}", idx.network_edges());
    println!("sigma:            {}", idx.sigma());
    println!("ET-graph edges:   {}", idx.rml().graph().num_edges());
    println!("max out-degree:   {}", idx.rml().graph().max_out_degree());
    println!(
        "core size:        {} bytes ({:.2} bits/symbol)",
        idx.core_size_in_bytes(),
        idx.bits_per_symbol()
    );
    println!("  labeled BWT:    {} bytes", idx.size_without_et_graph());
    println!("directory extras: {} bytes", idx.directory_size_in_bytes());
    match idx.locate_sampling_rate() {
        Some(r) => println!("locate support:   yes (SA sampling 1/{r})"),
        None => println!("locate support:   no (rebuild with --locate)"),
    }
    Ok(())
}

fn cmd_count(path: &str, spec: &str) -> Result<(), String> {
    let idx = load_index(path)?;
    let p = parse_path(spec).map_err(|e| e.to_string())?;
    match idx.try_range(Path::new(&p)).map_err(|e| e.to_string())? {
        Some(r) => println!("{} (suffix range {}..{})", r.len(), r.start, r.end),
        None => println!("0"),
    }
    Ok(())
}

fn cmd_locate(path: &str, spec: &str) -> Result<(), String> {
    let idx = load_index(path)?;
    let p = parse_path(spec).map_err(|e| e.to_string())?;
    let occ = idx.occurrences(Path::new(&p)).map_err(|e| e.to_string())?;
    println!("{} occurrence(s)", occ.remaining());
    // Sorted (trajectory, offset) — the order scripts relied on before the
    // streaming API; the iterator itself yields suffix-range order.
    for (traj, offset) in occ.collect_sorted() {
        println!("trajectory {traj} @ edge offset {offset}");
    }
    Ok(())
}

fn cmd_get(path: &str, id_spec: &str) -> Result<(), String> {
    let idx = load_index(path)?;
    let id: usize = id_spec.parse().map_err(|_| "bad trajectory id")?;
    if id >= idx.num_trajectories() {
        return Err(format!(
            "trajectory {id} out of range (have {})",
            idx.num_trajectories()
        ));
    }
    println!("{}", format_trajectory(&idx.trajectory(id)));
    Ok(())
}
