//! Deterministic fault injection for the persistence layer.
//!
//! Every durable mutation in [`crate::store`] and [`crate::wal`] — tmp-file
//! writes, fsyncs, renames, directory fsyncs — funnels through the
//! primitives in this module instead of calling `std::fs` directly. A test
//! **arms** the current thread with a [`Fault`] plan; the primitives then
//! consult it on every operation and can
//!
//! * simulate a **crash at operation N** ([`Fault::CrashAt`]): the N-th
//!   durable op — and everything after it, since a dead process issues no
//!   more syscalls — fails with an injected error, optionally leaving a
//!   **torn** (half-written) file behind, exactly like power loss mid
//!   `write(2)`;
//! * fail every fsync ([`Fault::FsyncError`]) or rename
//!   ([`Fault::RenameError`]) while letting the data writes through;
//! * flip one bit in the N-th read ([`Fault::BitrotAt`]) to model silent
//!   media corruption;
//! * merely **count** operations ([`Fault::Observe`]), which is how the
//!   crash-matrix test discovers how many injection points a `save_dir`
//!   or WAL append has before iterating over all of them.
//!
//! The plan is **thread-local**: concurrent tests do not interfere, and
//! the disarmed fast path is one thread-local borrow + `None` check —
//! nothing the bench gate can see.
//!
//! This module is a test harness, but it ships in the library (not behind
//! `cfg(test)`) so integration tests in other crates — the serve layer's
//! durability suite, the CI crash matrix — can drive it too.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// What an armed thread injects into the IO primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Inject nothing; count operations (see [`Report::ops`]). Used to
    /// enumerate the injection points of a save before crashing at each.
    Observe,
    /// Simulate process death at durable operation `at` (0-based): that
    /// op and every later one fail with an injected error. With `torn`,
    /// a write at the crash point leaves the first half of its bytes on
    /// disk — a short write — instead of nothing.
    CrashAt {
        /// Index of the first operation that fails.
        at: usize,
        /// Whether a write at the crash point lands half its bytes.
        torn: bool,
    },
    /// Every file/directory fsync fails; writes and renames proceed.
    FsyncError,
    /// Every rename fails; nothing is renamed.
    RenameError,
    /// Flip one bit in the buffer returned by the `at`-th [`read`] call
    /// (reads are counted separately from durable ops).
    BitrotAt {
        /// Index of the read whose buffer is corrupted.
        at: usize,
    },
}

/// What an armed run observed, returned by [`disarm`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Report {
    /// Durable operations consulted (writes, fsyncs, renames, dir syncs).
    pub ops: usize,
    /// Read operations consulted.
    pub reads: usize,
    /// Whether the armed fault actually fired.
    pub fired: bool,
}

struct State {
    fault: Fault,
    report: Report,
    /// Once a [`Fault::CrashAt`] fires, the "process" is dead: every
    /// subsequent durable op fails too, so a save cannot half-continue
    /// past its own crash.
    crashed: bool,
}

thread_local! {
    static STATE: RefCell<Option<State>> = const { RefCell::new(None) };
}

/// Arm the current thread with `fault`. Replaces any previous plan.
pub fn arm(fault: Fault) {
    STATE.with(|s| {
        *s.borrow_mut() = Some(State {
            fault,
            report: Report::default(),
            crashed: false,
        })
    });
}

/// Disarm the current thread, returning what the armed run observed
/// (`None` if nothing was armed).
pub fn disarm() -> Option<Report> {
    STATE.with(|s| s.borrow_mut().take()).map(|st| st.report)
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// Verdict for one durable operation.
enum Verdict {
    Proceed,
    /// Fail without touching the disk.
    Fail(&'static str),
    /// (Writes only) land the first half of the bytes, then fail.
    Torn,
}

/// The operation classes the plan discriminates on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Op {
    Write,
    Sync,
    Rename,
}

fn consult(op: Op) -> Verdict {
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(st) = borrow.as_mut() else {
            return Verdict::Proceed;
        };
        let i = st.report.ops;
        st.report.ops += 1;
        match st.fault {
            Fault::Observe | Fault::BitrotAt { .. } => Verdict::Proceed,
            Fault::CrashAt { at, torn } => {
                if st.crashed {
                    Verdict::Fail("crashed")
                } else if i == at {
                    st.crashed = true;
                    st.report.fired = true;
                    if torn && op == Op::Write {
                        Verdict::Torn
                    } else {
                        Verdict::Fail("crash")
                    }
                } else {
                    Verdict::Proceed
                }
            }
            Fault::FsyncError if op == Op::Sync => {
                st.report.fired = true;
                Verdict::Fail("fsync failure")
            }
            Fault::RenameError if op == Op::Rename => {
                st.report.fired = true;
                Verdict::Fail("rename failure")
            }
            _ => Verdict::Proceed,
        }
    })
}

/// Create/overwrite `path` with `bytes` (a durable **write** op).
pub(crate) fn write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    match consult(Op::Write) {
        Verdict::Proceed => std::fs::write(path, bytes),
        Verdict::Torn => {
            let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
            Err(injected("torn write"))
        }
        Verdict::Fail(what) => Err(injected(what)),
    }
}

/// Append `bytes` to an open file (a durable **write** op).
pub(crate) fn append_file(file: &mut File, bytes: &[u8]) -> io::Result<()> {
    match consult(Op::Write) {
        Verdict::Proceed => file.write_all(bytes),
        Verdict::Torn => {
            let _ = file.write_all(&bytes[..bytes.len() / 2]);
            let _ = file.flush();
            Err(injected("torn write"))
        }
        Verdict::Fail(what) => Err(injected(what)),
    }
}

/// fsync an open file (a durable **sync** op).
pub(crate) fn sync_file(file: &File) -> io::Result<()> {
    match consult(Op::Sync) {
        Verdict::Proceed => file.sync_all(),
        Verdict::Torn | Verdict::Fail(_) => Err(injected("fsync failure")),
    }
}

/// fsync a path — a file or (on Unix) a directory — by opening it
/// read-only and calling `sync_all` (a durable **sync** op). Directory
/// fsync is what makes a rename itself survive power loss.
pub(crate) fn sync_path(path: &Path) -> io::Result<()> {
    match consult(Op::Sync) {
        Verdict::Proceed => File::open(path)?.sync_all(),
        Verdict::Torn | Verdict::Fail(_) => Err(injected("fsync failure")),
    }
}

/// Rename `from` to `to` (a durable **rename** op).
pub(crate) fn rename(from: &Path, to: &Path) -> io::Result<()> {
    match consult(Op::Rename) {
        Verdict::Proceed => std::fs::rename(from, to),
        Verdict::Torn | Verdict::Fail(_) => Err(injected("rename failure")),
    }
}

/// Read a whole file, optionally flipping one bit per [`Fault::BitrotAt`].
pub(crate) fn read(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        if let Some(st) = borrow.as_mut() {
            let i = st.report.reads;
            st.report.reads += 1;
            if let Fault::BitrotAt { at } = st.fault {
                if i == at && !bytes.is_empty() {
                    st.report.fired = true;
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x10;
                }
            }
        }
    });
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_primitives_pass_through() {
        let dir = std::env::temp_dir().join(format!("cinct-faultio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("a");
        write_file(&f, b"hello").unwrap();
        assert_eq!(read(&f).unwrap(), b"hello");
        sync_path(&f).unwrap();
        let g = dir.join("b");
        rename(&f, &g).unwrap();
        assert_eq!(read(&g).unwrap(), b"hello");
        assert!(disarm().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_at_fails_the_nth_op_and_everything_after() {
        let dir = std::env::temp_dir().join(format!("cinct-faultio-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        arm(Fault::CrashAt { at: 1, torn: false });
        write_file(&dir.join("a"), b"one").unwrap(); // op 0: fine
        assert!(write_file(&dir.join("b"), b"two").is_err()); // op 1: crash
        assert!(sync_path(&dir.join("a")).is_err()); // dead process
        let rep = disarm().unwrap();
        assert_eq!(rep.ops, 3);
        assert!(rep.fired);
        assert!(!dir.join("b").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_crash_leaves_half_the_bytes() {
        let dir = std::env::temp_dir().join(format!("cinct-faultio-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        arm(Fault::CrashAt { at: 0, torn: true });
        assert!(write_file(&dir.join("t"), b"0123456789").is_err());
        disarm().unwrap();
        assert_eq!(std::fs::read(dir.join("t")).unwrap(), b"01234");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitrot_flips_one_bit_in_the_targeted_read() {
        let dir = std::env::temp_dir().join(format!("cinct-faultio-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("r");
        write_file(&f, b"abcd").unwrap();
        arm(Fault::BitrotAt { at: 1 });
        assert_eq!(read(&f).unwrap(), b"abcd"); // read 0: clean
        assert_ne!(read(&f).unwrap(), b"abcd"); // read 1: one bit flipped
        assert!(disarm().unwrap().fired);
        assert_eq!(std::fs::read(&f).unwrap(), b"abcd"); // disk untouched
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_and_rename_faults_are_selective() {
        let dir = std::env::temp_dir().join(format!("cinct-faultio-sel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("x");
        arm(Fault::FsyncError);
        write_file(&f, b"ok").unwrap();
        assert!(sync_path(&f).is_err());
        rename(&f, &dir.join("y")).unwrap();
        assert!(disarm().unwrap().fired);
        arm(Fault::RenameError);
        assert!(rename(&dir.join("y"), &dir.join("z")).is_err());
        sync_path(&dir.join("y")).unwrap();
        assert!(disarm().unwrap().fired);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
