//! Horizontal scale-out: a corpus partitioned across K per-shard
//! [`CinctIndex`]es behind one [`PathQuery`] facade.
//!
//! A single CiNCT index is capped by one SA-IS pass and one machine-sized
//! BWT, and any new trajectory forces a full rebuild. [`ShardedCinct`]
//! removes both limits:
//!
//! * **Partitioned construction** — [`ShardedBuilder`] splits the corpus
//!   into K shards (round-robin or size-balanced, [`ShardPartition`]),
//!   builds each shard's `CinctIndex` independently (in parallel on the
//!   rayon shim), and records a *manifest*: the bijection between
//!   corpus-global trajectory IDs and `(shard, local)` IDs.
//! * **Fan-out querying** — `count`/`occurrences` fan the path across
//!   every shard and merge; occurrence listings stream through
//!   [`cinct_fmindex::OccurIter::fan_out`] with each shard's local IDs
//!   remapped to the global namespace, so results are comparable
//!   element-for-element with a monolithic index over the same corpus.
//! * **Pruned fan-out** — every shard carries [`crate::prune`] metadata
//!   (edge membership + owned global-ID span), derived at construction
//!   and persisted in the manifest. Pattern labels are resolved **once
//!   per query** against the corpus-level membership union, then shards
//!   whose membership rules out any pattern edge are skipped without a
//!   backward search — outcome-identical, just cheaper (see
//!   [`ShardedCinct::shard_ranges`]).
//! * **Incremental ingest** — [`ShardedCinct::append_batch`] seals a new
//!   batch of trajectories into a fresh shard (no existing shard is
//!   touched); [`ShardedCinct::compact`] re-balances back down to a
//!   target shard count when append-created shards accumulate.
//! * **Durable multi-file persistence** — [`ShardedCinct::save_dir`] /
//!   [`ShardedCinct::open_dir`] (see [`crate::store`]): a versioned,
//!   checksummed shard manifest plus one index file per shard.
//!
//! # Global row space and the `range` contract
//!
//! BWT row spaces are per-shard; `ShardedCinct` exposes them as one
//! *concatenated* global row space (shard `s` owns rows
//! `[bases[s], bases[s+1])`), in which [`PathQuery::lf_step`] and
//! therefore extraction walks work unchanged — an LF step never leaves
//! its shard. A path's suffix *range*, however, is one contiguous
//! interval per shard and cannot be a single global interval; the sharded
//! [`PathQuery::range`] therefore returns a **multiplicity-preserving
//! virtual range** `Some(0..count)` (or `None` when the path is absent)
//! so `count`-shaped callers — including the batch `QueryEngine` — see
//! exactly the monolithic answers. Callers that need real per-shard rows
//! use [`ShardedCinct::shard_ranges`].
//!
//! # Quick start
//!
//! ```
//! use cinct::{Path, PathQuery, ShardedBuilder};
//!
//! let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
//! let mut sharded = ShardedBuilder::new()
//!     .shards(2)
//!     .locate_sampling(4)
//!     .build(&trajs, 6);
//! assert_eq!(sharded.num_shards(), 2);
//! // Same answers as a monolithic index, global trajectory IDs included.
//! assert_eq!(sharded.count(Path::new(&[0, 1])), 2);
//! let occ = sharded.occurrences(Path::new(&[1, 2])).unwrap();
//! assert_eq!(occ.collect_sorted(), vec![(1, 1), (2, 0)]);
//! assert_eq!(sharded.trajectory(3), vec![0, 3]);
//! // Grow without rebuilding: the batch becomes shard #3 ...
//! sharded.append_batch(&[vec![1, 2, 5]]).unwrap();
//! assert_eq!(sharded.count(Path::new(&[1, 2])), 3);
//! // ... and compaction re-balances when fresh shards pile up.
//! sharded.compact(2).unwrap();
//! assert_eq!(sharded.num_shards(), 2);
//! assert_eq!(sharded.trajectory(4), vec![1, 2, 5]);
//! ```

use crate::builder::{validate_corpus, CinctBuilder};
use crate::index::CinctIndex;
use crate::prune::{EdgeMembership, ShardPruning};
use crate::rml::LabelingStrategy;
use cinct_bwt::SYMBOL_OFFSET;
use cinct_fmindex::{OccurIter, OccurSegment, Path, PathQuery, QueryError};
use cinct_succinct::Symbol;
use std::ops::Range;

/// How [`ShardedBuilder`] distributes trajectories across shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPartition {
    /// Trajectory `g` goes to shard `g % K`. Predictable and oblivious to
    /// trajectory length — fine when lengths are i.i.d.
    RoundRobin,
    /// Greedy balance on *symbols*: each trajectory (in corpus order) goes
    /// to the currently lightest shard, ties to the lowest shard index.
    /// Keeps per-shard build and query cost even under skewed trajectory
    /// lengths. The default.
    SizeBalanced,
}

/// A shard excluded from a resiliently opened corpus, and why.
///
/// Produced by [`ShardedCinct::open_dir_with`](crate::store::OpenMode)
/// when a shard fails its checksum, parse, or namespace checks. The
/// shard's trajectories stay *reserved* in the global namespace (so
/// appends keep numbering correctly) but read as unavailable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// The shard's slot in the manifest it was loaded from.
    pub slot: usize,
    /// The shard file's name inside the corpus directory.
    pub file: String,
    /// How many trajectories the manifest says the shard held.
    pub trajectories: usize,
    /// The failure that quarantined it (a rendered [`QueryError`]).
    pub reason: String,
}

/// One shard: a self-contained [`CinctIndex`] over a slice of the corpus,
/// plus the manifest column mapping its local trajectory IDs back to the
/// corpus-global namespace.
#[derive(Clone, Debug)]
pub(crate) struct Shard {
    pub(crate) index: CinctIndex,
    /// `globals[local_id] = global_id`.
    pub(crate) globals: Vec<u32>,
    /// Pruning metadata: edge membership + owned global-ID span (see
    /// [`crate::prune`]). Derived from the index at every construction
    /// site, or restored from a v3 manifest.
    pub(crate) pruning: ShardPruning,
}

/// Configurable sharded construction. Mirrors [`CinctBuilder`]'s knobs
/// (they configure every per-shard index) and adds the shard count, the
/// partition strategy, and shard-level build parallelism.
#[derive(Clone, Copy, Debug)]
pub struct ShardedBuilder {
    index_builder: CinctBuilder,
    n_shards: usize,
    partition: ShardPartition,
    threads: usize,
}

impl Default for ShardedBuilder {
    fn default() -> Self {
        Self {
            index_builder: CinctBuilder::new(),
            n_shards: 1,
            partition: ShardPartition::SizeBalanced,
            threads: 0,
        }
    }
}

impl ShardedBuilder {
    /// Default configuration: one shard, size-balanced partition, shard
    /// builds fanned across all cores (`threads(0)` = auto), default
    /// [`CinctBuilder`] per shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of shards to partition the corpus into (`>= 1`). Shards
    /// that would receive no trajectory (e.g. `K >` corpus size) are not
    /// created.
    pub fn shards(mut self, k: usize) -> Self {
        assert!(k >= 1, "shard count must be >= 1");
        self.n_shards = k;
        self
    }

    /// Partition strategy (default [`ShardPartition::SizeBalanced`]).
    pub fn partition(mut self, p: ShardPartition) -> Self {
        self.partition = p;
        self
    }

    /// Replace the per-shard index configuration wholesale.
    pub fn index_builder(mut self, b: CinctBuilder) -> Self {
        self.index_builder = b;
        self
    }

    /// Per-shard RRR block size (see [`CinctBuilder::block_size`]).
    pub fn block_size(mut self, b: usize) -> Self {
        self.index_builder = self.index_builder.block_size(b);
        self
    }

    /// Per-shard locate support (see [`CinctBuilder::locate_sampling`]).
    pub fn locate_sampling(mut self, rate: usize) -> Self {
        self.index_builder = self.index_builder.locate_sampling(rate);
        self
    }

    /// Per-shard labeling strategy (see [`CinctBuilder::labeling`]).
    pub fn labeling(mut self, strategy: LabelingStrategy) -> Self {
        self.index_builder = self.index_builder.labeling(strategy);
        self
    }

    /// Build (and later fan queries) with up to `n` concurrent shards.
    /// `0` = "auto" (the machine's available parallelism) — the
    /// workspace-wide thread-knob convention (`rayon::resolve_threads`).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// The configured per-shard index builder (persisted in the shard
    /// manifest so reopened directories keep building identical shards).
    pub fn index_builder_config(&self) -> CinctBuilder {
        self.index_builder
    }

    /// The configured shard count (see [`ShardedBuilder::shards`]).
    pub fn configured_shards(&self) -> usize {
        self.n_shards
    }

    /// The configured partition strategy.
    pub fn configured_partition(&self) -> ShardPartition {
        self.partition
    }

    /// The configured thread knob, unresolved (`0` = auto).
    pub fn configured_threads(&self) -> usize {
        self.threads
    }

    /// Assign each global trajectory ID to a shard; returns per-shard
    /// member lists (corpus order within each shard), empties dropped.
    fn members(&self, trajectories: &[Vec<u32>]) -> Vec<Vec<u32>> {
        let k = self.n_shards.min(trajectories.len()).max(1);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        match self.partition {
            ShardPartition::RoundRobin => {
                for g in 0..trajectories.len() {
                    members[g % k].push(g as u32);
                }
            }
            ShardPartition::SizeBalanced => {
                let mut load = vec![0usize; k];
                for (g, t) in trajectories.iter().enumerate() {
                    let lightest = (0..k).min_by_key(|&s| load[s]).expect("k >= 1");
                    load[lightest] += t.len() + 1;
                    members[lightest].push(g as u32);
                }
            }
        }
        members.retain(|m| !m.is_empty());
        members
    }

    /// Build from raw trajectories. Like [`CinctBuilder::build`] this
    /// trusts its input; use [`ShardedBuilder::try_build`] for untrusted
    /// sources.
    pub fn build(&self, trajectories: &[Vec<u32>], n_edges: usize) -> ShardedCinct {
        let members = self.members(trajectories);
        let shards = build_shards(
            trajectories,
            n_edges,
            &members,
            self.index_builder,
            self.threads,
        );
        ShardedCinct::assemble(shards, n_edges, *self).expect("fresh partition is a bijection")
    }

    /// Validate every trajectory (non-empty corpus, no empty trajectory,
    /// all edges `< n_edges`), then build. Violations surface as typed
    /// [`QueryError`]s — the same contract as [`CinctBuilder::try_build`].
    pub fn try_build(
        &self,
        trajectories: &[Vec<u32>],
        n_edges: usize,
    ) -> Result<ShardedCinct, QueryError> {
        validate_corpus(trajectories, n_edges)?;
        Ok(self.build(trajectories, n_edges))
    }
}

/// Build every shard's index, fanning shards across up to `threads`
/// workers on the rayon shim. Deterministic: each shard's build is
/// independent and lands in its own slot, so thread count never changes
/// the result.
fn build_shards(
    trajectories: &[Vec<u32>],
    n_edges: usize,
    members: &[Vec<u32>],
    index_builder: CinctBuilder,
    threads: usize,
) -> Vec<Shard> {
    let build_one = |m: &Vec<u32>| -> CinctIndex {
        // Streamed ingest: each shard folds borrowed slices straight into
        // its trajectory string — the corpus is never copied per shard.
        index_builder
            .build_streamed(
                m.iter().map(|&g| trajectories[g as usize].as_slice()),
                n_edges,
            )
            .0
    };
    let threads = rayon::resolve_threads(threads).min(members.len().max(1));
    let mut slots: Vec<Option<CinctIndex>> = Vec::new();
    slots.resize_with(members.len(), || None);
    if threads <= 1 {
        for (slot, m) in slots.iter_mut().zip(members) {
            *slot = Some(build_one(m));
        }
    } else {
        let per = members.len().div_ceil(threads);
        rayon::scope(|s| {
            for (m_chunk, slot_chunk) in members.chunks(per).zip(slots.chunks_mut(per)) {
                s.spawn(move |_| {
                    for (slot, m) in slot_chunk.iter_mut().zip(m_chunk) {
                        *slot = Some(build_one(m));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .zip(members)
        .map(|(idx, m)| {
            let index = idx.expect("every shard slot filled");
            let pruning = ShardPruning::derive(&index, n_edges, m);
            Shard {
                index,
                globals: m.clone(),
                pruning,
            }
        })
        .collect()
}

/// A batch validated and built into a shard-shaped index, not yet part
/// of any corpus. Produced by [`ShardedCinct::prepare_batch`] (cheap to
/// hold, expensive to make); consumed by
/// [`ShardedCinct::install_prepared`], which assigns the global IDs.
#[derive(Clone, Debug)]
pub struct PreparedBatch {
    index: CinctIndex,
    len: usize,
}

impl PreparedBatch {
    /// Number of trajectories the batch will add.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the batch adds nothing (unreachable through
    /// [`ShardedCinct::prepare_batch`], which rejects empty corpora).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A corpus partitioned across K per-shard [`CinctIndex`]es, queried as
/// one [`PathQuery`] backend under a global trajectory-ID namespace.
///
/// See the [module docs](self) for the data model, the global row space,
/// and the `range` contract. Built by [`ShardedBuilder`]; persisted with
/// [`ShardedCinct::save_dir`] / reopened with [`ShardedCinct::open_dir`];
/// grown with [`ShardedCinct::append_batch`] and re-balanced with
/// [`ShardedCinct::compact`].
#[derive(Clone, Debug)]
pub struct ShardedCinct {
    shards: Vec<Shard>,
    /// `lookup[global_id] = (shard, local_id)` — the manifest mapping.
    lookup: Vec<(u32, u32)>,
    /// Global row-space bases: shard `s` owns rows `bases[s]..bases[s+1]`.
    bases: Vec<usize>,
    n_edges: usize,
    /// The construction configuration, kept so `append_batch`/`compact`
    /// (and a reopened directory) build new shards identically.
    config: ShardedBuilder,
    /// The fan-out thread budget, resolved **once** at assembly
    /// (`available_parallelism` is a syscall — far too expensive per
    /// query on the hot path).
    fan_threads: usize,
    /// Union of every shard's edge membership — the corpus-level
    /// instant-miss check: a pattern edge absent here is absent from
    /// every shard, so the whole fan-out short-circuits to `None`
    /// without touching a single shard.
    prune_union: EdgeMembership,
    /// Whether fan-outs consult pruning metadata (default on; benches
    /// flip it off to measure the unpruned fan-out tax).
    prune_enabled: bool,
    /// Shards a resilient open excluded (empty for a healthy corpus).
    /// Their global IDs are holes in `lookup`.
    quarantined: Vec<QuarantinedShard>,
}

impl ShardedCinct {
    /// Build with default sharding (see [`ShardedBuilder::new`]) — `k`
    /// shards over the corpus.
    pub fn build(trajectories: &[Vec<u32>], n_edges: usize, k: usize) -> Self {
        ShardedBuilder::new().shards(k).build(trajectories, n_edges)
    }

    /// Assemble from shards + config, rebuilding and validating the
    /// global lookup: every global ID in `0..n` must appear exactly once
    /// across the shard manifests. `Err(CorruptIndex)` otherwise (the
    /// persistence layer funnels loaded directories through here).
    pub(crate) fn assemble(
        shards: Vec<Shard>,
        n_edges: usize,
        config: ShardedBuilder,
    ) -> Result<Self, QueryError> {
        let n: usize = shards.iter().map(|s| s.globals.len()).sum();
        Self::assemble_with_holes(shards, n, n_edges, config, Vec::new())
    }

    /// [`ShardedCinct::assemble`] over a namespace of `n_total` IDs of
    /// which some may be **holes** — IDs belonging to `quarantined`
    /// shards a resilient open excluded. Holes are only legal when a
    /// quarantine explains them; with `quarantined` empty this is exactly
    /// the strict total-coverage assembly.
    pub(crate) fn assemble_with_holes(
        shards: Vec<Shard>,
        n_total: usize,
        n_edges: usize,
        config: ShardedBuilder,
        quarantined: Vec<QuarantinedShard>,
    ) -> Result<Self, QueryError> {
        let mut lookup = vec![(u32::MAX, u32::MAX); n_total];
        let mut filled = 0usize;
        for (s, shard) in shards.iter().enumerate() {
            if shard.globals.len() != shard.index.num_trajectories() {
                return Err(QueryError::CorruptIndex(format!(
                    "shard {s}: {} trajectories but {} manifest entries",
                    shard.index.num_trajectories(),
                    shard.globals.len()
                )));
            }
            for (l, &g) in shard.globals.iter().enumerate() {
                let slot = lookup.get_mut(g as usize).ok_or_else(|| {
                    QueryError::CorruptIndex(format!(
                        "shard {s}: global trajectory id {g} out of range (corpus has {n_total})"
                    ))
                })?;
                if slot.0 != u32::MAX {
                    return Err(QueryError::CorruptIndex(format!(
                        "global trajectory id {g} appears in shards {} and {s}",
                        slot.0
                    )));
                }
                *slot = (s as u32, l as u32);
                filled += 1;
            }
        }
        // n_total slots, `filled` entries, no duplicates: any shortfall
        // must be accounted for by a quarantine.
        if filled < n_total && quarantined.is_empty() {
            return Err(QueryError::CorruptIndex(format!(
                "{} global trajectory id(s) missing from every shard",
                n_total - filled
            )));
        }
        let mut bases = Vec::with_capacity(shards.len() + 1);
        bases.push(0usize);
        for shard in &shards {
            bases.push(bases.last().unwrap() + shard.index.text_len());
        }
        let fan_threads = rayon::resolve_threads(config.threads);
        let mut prune_union = EdgeMembership::for_alphabet(n_edges);
        for shard in &shards {
            prune_union.union_with(shard.pruning.membership());
        }
        Ok(ShardedCinct {
            shards,
            lookup,
            bases,
            n_edges,
            config,
            fan_threads,
            prune_union,
            prune_enabled: true,
            quarantined,
        })
    }

    /// Number of shards currently serving the corpus.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of indexed trajectories (across all shards).
    pub fn num_trajectories(&self) -> usize {
        self.lookup.len()
    }

    /// Number of road-network edges the corpus was indexed over.
    pub fn network_edges(&self) -> usize {
        self.n_edges
    }

    /// The construction configuration new shards are built with.
    pub fn config(&self) -> &ShardedBuilder {
        &self.config
    }

    /// The `s`-th shard's index (read-only; shard-local IDs).
    pub fn shard_index(&self, s: usize) -> &CinctIndex {
        &self.shards[s].index
    }

    /// The `s`-th shard's manifest column: `globals[local] = global`.
    pub fn shard_globals(&self, s: usize) -> &[u32] {
        &self.shards[s].globals
    }

    /// Whether this corpus was resiliently opened around damaged shards.
    /// Degraded corpora answer queries over the surviving shards but
    /// refuse [`ShardedCinct::save_dir`] and [`ShardedCinct::compact`].
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// The shards a resilient open quarantined (empty when healthy).
    pub fn quarantined(&self) -> &[QuarantinedShard] {
        &self.quarantined
    }

    /// Whether global trajectory `g` is loaded — `false` for IDs beyond
    /// the namespace *and* for IDs stranded in a quarantined shard.
    pub fn trajectory_available(&self, g: usize) -> bool {
        self.lookup.get(g).is_some_and(|&(s, _)| s != u32::MAX)
    }

    /// Where global trajectory `g` lives: `(shard, local_id)`.
    ///
    /// Panics if `g` is out of range or quarantined — query
    /// [`ShardedCinct::trajectory_available`] (or use
    /// [`ShardedCinct::try_trajectory`]) on possibly-degraded corpora.
    pub fn shard_of(&self, g: usize) -> (usize, usize) {
        let (s, l) = self.lookup[g];
        debug_assert!(s != u32::MAX, "trajectory {g} is quarantined");
        (s as usize, l as usize)
    }

    /// Recover global trajectory `g` (forward edge order) from its shard.
    ///
    /// Panics on an out-of-range or quarantined `g` — see
    /// [`ShardedCinct::try_trajectory`] for the fallible form.
    pub fn trajectory(&self, g: usize) -> Vec<u32> {
        let (s, l) = self.shard_of(g);
        self.shards[s].index.trajectory(l)
    }

    /// Fallible [`ShardedCinct::trajectory`]: `InvalidInput` for an ID
    /// beyond the namespace, `CorruptIndex` for one whose shard a
    /// resilient open quarantined.
    pub fn try_trajectory(&self, g: usize) -> Result<Vec<u32>, QueryError> {
        match self.lookup.get(g) {
            None => Err(QueryError::InvalidInput(format!(
                "trajectory id {g} out of range (corpus has {})",
                self.lookup.len()
            ))),
            Some(&(s, _)) if s == u32::MAX => Err(QueryError::CorruptIndex(format!(
                "trajectory {g} is unavailable: its shard is quarantined"
            ))),
            Some(&(s, l)) => Ok(self.shards[s as usize].index.trajectory(l as usize)),
        }
    }

    /// Length (in edges) of global trajectory `g`.
    pub fn trajectory_len(&self, g: usize) -> usize {
        let (s, l) = self.shard_of(g);
        self.shards[s].index.trajectory_len(l)
    }

    /// Sum of per-shard core index sizes (the paper's accounting).
    pub fn core_size_in_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.index.core_size_in_bytes())
            .sum()
    }

    /// Re-resolve the query fan-out thread budget (`0` = auto, `1` =
    /// sequential — the shared knob convention). A serving-time knob:
    /// per-query fan-out spawns scope threads on the rayon shim, which
    /// pays off for occurrence-heavy queries over many shards but costs
    /// more than a microsecond-scale count — tune to the workload.
    /// Construction parallelism for future `append_batch`/`compact`
    /// builds follows the same setting.
    pub fn set_fan_out_threads(&mut self, n: usize) {
        self.config = self.config.threads(n);
        self.fan_threads = rayon::resolve_threads(n);
    }

    /// The resolved query fan-out thread budget.
    pub fn fan_out_threads(&self) -> usize {
        self.fan_threads
    }

    /// Enable or disable shard pruning for fan-out queries (default:
    /// enabled). Pruning is outcome-identical either way — a pruned
    /// shard's backward search would have returned `None` — so this is a
    /// measurement knob: benches flip it off to record the unpruned
    /// fan-out tax the metadata saves.
    pub fn set_pruning(&mut self, enabled: bool) {
        self.prune_enabled = enabled;
    }

    /// Whether fan-out queries consult pruning metadata.
    pub fn pruning_enabled(&self) -> bool {
        self.prune_enabled
    }

    /// The `s`-th shard's pruning metadata (edge membership + global-ID
    /// span) — what the fan-out's skip decisions are made from.
    pub fn shard_pruning(&self, s: usize) -> &ShardPruning {
        &self.shards[s].pruning
    }

    /// The global trajectory-ID span `(first, last)` shard `s` owns —
    /// the manifest-level routing hint for ID-constrained lookups.
    /// (`lookup` already routes point lookups O(1); the span is what the
    /// manifest persists so a future lazy open can route without loading
    /// the column.)
    pub fn shard_id_span(&self, s: usize) -> (u32, u32) {
        let p = &self.shards[s].pruning;
        (p.min_global(), p.max_global())
    }

    /// Why shard `s` would be skipped for `path`, if it would: the first
    /// pattern edge the shard's membership set rules out. `None` when the
    /// shard must be searched — or when pruning is disabled. Drives
    /// `--trace` output and the CI pruning assertions.
    pub fn pruned_edge(&self, s: usize, path: &Path) -> Option<u32> {
        if !self.prune_enabled {
            return None;
        }
        self.shards[s].pruning.rules_out(path)
    }

    /// Whether every shard supports locate (occurrence listing needs all
    /// of them to).
    pub fn locate_supported(&self) -> bool {
        !self.shards.is_empty()
            && self
                .shards
                .iter()
                .all(|s| s.index.locate_sampling_rate().is_some())
    }

    /// Per-shard suffix ranges of a forward path — the real (shard-local)
    /// row intervals behind the virtual [`PathQuery::range`]. Fans out
    /// across shards on the rayon shim when the configured thread knob
    /// (resolved once, at assembly) allows more than one worker.
    ///
    /// **Shared-work pruning** (unless [`ShardedCinct::set_pruning`]
    /// disabled it): the pattern's edge labels are resolved **once per
    /// query** against the corpus-level membership union — an edge absent
    /// everywhere ends the fan-out before any shard is touched — then
    /// each shard's own membership set is probed (O(L) bit tests) and
    /// shards that cannot match are skipped without running their
    /// backward search. A skipped shard contributes exactly the `None`
    /// its search would have returned, so pruned and unpruned fan-outs
    /// are outcome-identical; skipped-vs-visited counts land in the
    /// `cinct_obs` shard catalog.
    pub fn shard_ranges(&self, path: &Path) -> Vec<Option<Range<usize>>> {
        let m = crate::metrics::shard();
        m.fanout_queries.inc();
        let k = self.shards.len();
        if self.prune_enabled && path.edges().iter().any(|&e| !self.prune_union.contains(e)) {
            // Corpus-level instant miss: some pattern edge occurs in no
            // shard at all, so every per-shard search would return None.
            m.fanout_union_rejects.inc();
            m.fanout_shards_pruned.add(k as u64);
            return vec![None; k];
        }
        // Once-per-query prune plan: which shards must actually search.
        let visit: Vec<bool> = if self.prune_enabled {
            self.shards
                .iter()
                .map(|s| s.pruning.rules_out(path).is_none())
                .collect()
        } else {
            vec![true; k]
        };
        let n_visit = visit.iter().filter(|&&v| v).count();
        let threads = self.fan_threads.min(n_visit.max(1));
        let slots = if threads <= 1 || n_visit <= 1 {
            self.shards
                .iter()
                .zip(&visit)
                .map(|(s, &v)| if v { s.index.range(path) } else { None })
                .collect()
        } else {
            let mut slots: Vec<Option<Range<usize>>> = vec![None; k];
            let per = k.div_ceil(threads);
            rayon::scope(|scope| {
                for ((sh_chunk, visit_chunk), slot_chunk) in self
                    .shards
                    .chunks(per)
                    .zip(visit.chunks(per))
                    .zip(slots.chunks_mut(per))
                {
                    scope.spawn(move |_| {
                        for ((sh, &v), slot) in
                            sh_chunk.iter().zip(visit_chunk).zip(slot_chunk.iter_mut())
                        {
                            if v {
                                *slot = sh.index.range(path);
                            }
                        }
                    });
                }
            });
            slots
        };
        // Per-fan-out accounting: a few relaxed adds amortized over the
        // whole shard sweep, off the per-shard search loop.
        let matched = slots.iter().filter(|r| r.is_some()).count() as u64;
        m.fanout_shards_visited.add(n_visit as u64);
        m.fanout_shards_pruned.add((k - n_visit) as u64);
        m.fanout_shards_matched.add(matched);
        m.fanout_shards_short_circuited
            .add(n_visit as u64 - matched);
        slots
    }

    /// Seal `batch` into a **new shard** — no existing shard is rebuilt
    /// or touched. The batch's trajectories receive the next global IDs
    /// in order; the assigned ID range is returned. The new shard is
    /// built with the same configuration as the originals, so query
    /// semantics (locate support, block size, labeling) stay uniform.
    ///
    /// Validation is the [`CinctBuilder::try_build`] contract; note the
    /// edge-ID alphabet is **fixed at first build** — a batch touching an
    /// edge `>= network_edges()` is rejected with
    /// [`QueryError::UnknownEdge`].
    ///
    /// This is [`ShardedCinct::prepare_batch`] followed by
    /// [`ShardedCinct::install_prepared`]; long-lived servers call the
    /// two halves separately so the expensive build runs while readers
    /// keep querying, and only the O(batch) install needs exclusivity.
    pub fn append_batch(&mut self, batch: &[Vec<u32>]) -> Result<Range<usize>, QueryError> {
        let prepared = self.prepare_batch(batch)?;
        Ok(self.install_prepared(prepared))
    }

    /// First half of an append: validate `batch` and build it into a
    /// shard-shaped index, through `&self` — concurrent readers (and
    /// other `prepare_batch` calls) proceed untouched. The result is
    /// position-independent: global IDs are assigned at
    /// [`ShardedCinct::install_prepared`] time, so prepared batches may
    /// install in any order, including after other appends landed.
    pub fn prepare_batch(&self, batch: &[Vec<u32>]) -> Result<PreparedBatch, QueryError> {
        let _span = cinct_obs::Span::enter(&crate::metrics::shard().append_ns);
        validate_corpus(batch, self.n_edges)?;
        Ok(PreparedBatch {
            index: self.config.index_builder.build(batch, self.n_edges),
            len: batch.len(),
        })
    }

    /// Second half of an append: assign the next global IDs to a
    /// prepared batch and install it as a fresh shard. O(batch) — no
    /// decompression, no rebuild, no per-shard work — so a server can
    /// hold its write lock for microseconds rather than a build.
    pub fn install_prepared(&mut self, prepared: PreparedBatch) -> Range<usize> {
        let PreparedBatch { index, len } = prepared;
        let first = self.lookup.len();
        let globals: Vec<u32> = (first..first + len).map(|g| g as u32).collect();
        let s = self.shards.len() as u32;
        self.lookup.extend((0..len).map(|l| (s, l as u32)));
        self.bases
            .push(self.bases.last().unwrap() + index.text_len());
        let pruning = ShardPruning::derive(&index, self.n_edges, &globals);
        self.prune_union.union_with(pruning.membership());
        self.shards.push(Shard {
            index,
            globals,
            pruning,
        });
        first..first + len
    }

    /// Re-balance the corpus into `target_shards` shards (decompressing
    /// every trajectory and rebuilding with the configured partition
    /// strategy). Global trajectory IDs are **preserved** — queries
    /// before and after compaction are outcome-identical. Use after a
    /// run of [`ShardedCinct::append_batch`] calls has accumulated many
    /// small shards.
    pub fn compact(&mut self, target_shards: usize) -> Result<(), QueryError> {
        let _span = cinct_obs::Span::enter(&crate::metrics::shard().compact_ns);
        if target_shards == 0 {
            return Err(QueryError::InvalidInput(
                "compact target must be >= 1 shard".into(),
            ));
        }
        if self.is_degraded() {
            return Err(QueryError::InvalidInput(format!(
                "refusing to compact a degraded corpus ({} quarantined shard(s) would be dropped)",
                self.quarantined.len()
            )));
        }
        // Global ID g == corpus position, so rebuilding from trajectories
        // in global order re-derives the same namespace.
        let corpus: Vec<Vec<u32>> = (0..self.num_trajectories())
            .map(|g| self.trajectory(g))
            .collect();
        let rebuilt = ShardedBuilder {
            n_shards: target_shards,
            ..self.config
        }
        .try_build(&corpus, self.n_edges)?;
        *self = rebuilt;
        Ok(())
    }

    /// Map a global row to `(shard, local row)`.
    #[inline]
    fn locate_row(&self, j: usize) -> (usize, usize) {
        debug_assert!(j < self.text_len(), "row {j} out of the global row space");
        let s = self.bases.partition_point(|&b| b <= j) - 1;
        (s, j - self.bases[s])
    }
}

impl PathQuery for ShardedCinct {
    fn text_len(&self) -> usize {
        *self.bases.last().unwrap_or(&0)
    }

    fn sigma(&self) -> usize {
        self.n_edges + SYMBOL_OFFSET as usize
    }

    fn size_in_bytes(&self) -> usize {
        self.core_size_in_bytes()
    }

    /// **Virtual** range: `Some(0..count)` with the fan-out total, `None`
    /// when the path is absent everywhere. A sharded corpus has one
    /// contiguous suffix range *per shard* ([`ShardedCinct::shard_ranges`]),
    /// not a single global interval; preserving `range(path).len() ==
    /// count(path)` keeps every count-shaped caller (the batch engine's
    /// `Count`, `try_range`) outcome-identical to a monolithic index.
    /// The endpoints are **not** rows of the global row space.
    fn range(&self, path: &Path) -> Option<Range<usize>> {
        let total: usize = self
            .shard_ranges(path)
            .into_iter()
            .map(|r| r.map_or(0, |r| r.len()))
            .sum();
        if total == 0 {
            None
        } else {
            Some(0..total)
        }
    }

    /// One LF step in the **global row space** (see the module docs): the
    /// row is delegated to its owning shard and the successor re-offset,
    /// so extraction walks behave exactly as on a monolithic index.
    fn lf_step(&self, j: usize) -> (Symbol, usize) {
        let (s, local) = self.locate_row(j);
        let (symbol, next) = self.shards[s].index.lf_step(local);
        (symbol, self.bases[s] + next)
    }

    fn occurrences(&self, path: &Path) -> Result<OccurIter<'_>, QueryError> {
        self.validate_path(path)?;
        if !self.locate_supported() {
            return Err(QueryError::LocateUnsupported);
        }
        let ranges = self.shard_ranges(path);
        let segments = self
            .shards
            .iter()
            .zip(ranges)
            .map(|(shard, rows)| OccurSegment::remapped(&shard.index, rows, &shard.globals))
            .collect();
        Ok(OccurIter::fan_out(segments, path.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Query, QueryEngine, QueryValue};

    fn paper_trajs() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
    }

    /// Walk-shaped pseudo-random corpus (same generator family as the
    /// builder tests).
    fn synthetic_trajs(n_trajs: usize, n_edges: u32, seed: u64) -> Vec<Vec<u32>> {
        let mut x = seed | 1;
        (0..n_trajs)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let len = 3 + ((x >> 33) % 40) as usize;
                let mut cur = ((x >> 20) as u32) % n_edges;
                (0..len)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        cur = (cur * 4 + 1 + ((x >> 33) as u32) % 4) % n_edges;
                        cur
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn partitions_cover_the_corpus() {
        let trajs = synthetic_trajs(23, 20, 5);
        for partition in [ShardPartition::RoundRobin, ShardPartition::SizeBalanced] {
            for k in [1usize, 2, 5, 40] {
                let sharded = ShardedBuilder::new()
                    .shards(k)
                    .partition(partition)
                    .build(&trajs, 20);
                assert_eq!(sharded.num_trajectories(), trajs.len());
                assert!(sharded.num_shards() <= k.min(trajs.len()));
                for (g, t) in trajs.iter().enumerate() {
                    assert_eq!(&sharded.trajectory(g), t, "{partition:?} k={k} g={g}");
                    assert_eq!(sharded.trajectory_len(g), t.len());
                }
            }
        }
    }

    #[test]
    fn size_balanced_spreads_symbols() {
        // One giant trajectory + many small ones: round-robin would put
        // the giant plus a share of small ones on one shard; size-balanced
        // gives the giant its own shard.
        let mut trajs = vec![vec![1u32; 500]];
        trajs.extend(synthetic_trajs(20, 10, 3));
        let sharded = ShardedBuilder::new()
            .shards(2)
            .partition(ShardPartition::SizeBalanced)
            .build(&trajs, 10);
        let (giant_shard, _) = sharded.shard_of(0);
        assert_eq!(
            sharded.shard_index(giant_shard).num_trajectories(),
            1,
            "giant trajectory should be alone on its shard"
        );
    }

    #[test]
    fn counts_and_virtual_range_match_monolithic() {
        let trajs = paper_trajs();
        let mono = CinctIndex::build(&trajs, 6);
        let sharded = ShardedCinct::build(&trajs, 6, 2);
        for a in 0..6u32 {
            for b in 0..6u32 {
                let p = [a, b];
                let path = Path::new(&p);
                assert_eq!(sharded.count(path), mono.count(path), "path {p:?}");
                match mono.range(path) {
                    None => assert_eq!(sharded.range(path), None),
                    Some(r) => assert_eq!(sharded.range(path), Some(0..r.len())),
                }
            }
        }
    }

    #[test]
    fn occurrences_carry_global_ids() {
        let trajs = paper_trajs();
        let sharded = ShardedBuilder::new()
            .shards(3)
            .locate_sampling(2)
            .build(&trajs, 6);
        let occ = sharded.occurrences(Path::new(&[0, 1])).unwrap();
        assert_eq!(occ.remaining(), 2);
        assert_eq!(occ.collect_sorted(), vec![(0, 0), (1, 0)]);
        let occ = sharded.occurrences(Path::new(&[1, 2])).unwrap();
        assert_eq!(occ.collect_sorted(), vec![(1, 1), (2, 0)]);
        // Absent path: empty stream, not an error.
        assert_eq!(sharded.occurrences(Path::new(&[5, 5])).unwrap().count(), 0);
        // Typed errors.
        assert_eq!(
            sharded.occurrences(Path::new(&[])).err(),
            Some(QueryError::EmptyPattern)
        );
        assert_eq!(
            sharded.occurrences(Path::new(&[99])).err(),
            Some(QueryError::UnknownEdge {
                edge: 99,
                n_edges: 6
            })
        );
        // No locate support anywhere -> LocateUnsupported up front.
        let plain = ShardedCinct::build(&trajs, 6, 2);
        assert_eq!(
            plain.occurrences(Path::new(&[0, 1])).err(),
            Some(QueryError::LocateUnsupported)
        );
    }

    #[test]
    fn global_row_space_extraction() {
        let trajs = paper_trajs();
        let sharded = ShardedCinct::build(&trajs, 6, 2);
        assert_eq!(
            sharded.text_len(),
            (0..sharded.num_shards())
                .map(|s| sharded.shard_index(s).text_len())
                .sum::<usize>()
        );
        // Every global row's LF step matches the owning shard's local step.
        for j in 0..sharded.text_len() {
            let (s, local) = sharded.locate_row(j);
            let (sym, next) = sharded.shard_index(s).lf_step(local);
            assert_eq!(
                PathQuery::lf_step(&sharded, j),
                (
                    sym,
                    next + {
                        let mut base = 0;
                        for i in 0..s {
                            base += sharded.shard_index(i).text_len();
                        }
                        base
                    }
                )
            );
            // Extraction walks stay inside the shard.
            let extracted = sharded.extract(j, 3);
            assert_eq!(extracted, sharded.shard_index(s).extract(local, 3));
        }
    }

    #[test]
    fn append_seals_a_fresh_shard() {
        let mut sharded = ShardedBuilder::new()
            .shards(2)
            .locate_sampling(4)
            .build(&paper_trajs(), 6);
        let before_shards = sharded.num_shards();
        let ids = sharded.append_batch(&[vec![1, 2, 5], vec![0, 1]]).unwrap();
        assert_eq!(ids, 4..6);
        assert_eq!(sharded.num_shards(), before_shards + 1);
        assert_eq!(sharded.num_trajectories(), 6);
        assert_eq!(sharded.trajectory(4), vec![1, 2, 5]);
        assert_eq!(sharded.trajectory(5), vec![0, 1]);
        // Queries see the merged corpus, new global IDs included.
        assert_eq!(sharded.count(Path::new(&[0, 1])), 3);
        let occ = sharded.occurrences(Path::new(&[1, 2])).unwrap();
        assert_eq!(occ.collect_sorted(), vec![(1, 1), (2, 0), (4, 0)]);
        // Ingest validation is the try_build contract.
        assert_eq!(
            sharded.append_batch(&[vec![0, 99]]).err(),
            Some(QueryError::UnknownEdge {
                edge: 99,
                n_edges: 6
            })
        );
        assert!(sharded.append_batch(&[]).is_err());
        assert!(sharded.append_batch(&[vec![]]).is_err());
    }

    #[test]
    fn prepare_then_install_matches_append() {
        // The split API must be observationally identical to append_batch,
        // including when prepares interleave with other installs (global
        // IDs are assigned at install time, not prepare time).
        let mut a = ShardedBuilder::new()
            .shards(2)
            .locate_sampling(4)
            .build(&paper_trajs(), 6);
        let mut b = a.clone();
        let batch1 = vec![vec![1u32, 2, 5], vec![0, 1]];
        let batch2 = vec![vec![0u32, 3, 0]];
        let ids1 = a.append_batch(&batch1).unwrap();
        let ids2 = a.append_batch(&batch2).unwrap();
        // Prepare both against the *pre-append* corpus, install in order.
        let p1 = b.prepare_batch(&batch1).unwrap();
        assert_eq!(p1.len(), 2);
        let p2 = b.prepare_batch(&batch2).unwrap();
        assert_eq!(b.install_prepared(p1), ids1);
        assert_eq!(b.install_prepared(p2), ids2);
        assert_eq!(a.num_shards(), b.num_shards());
        for g in 0..a.num_trajectories() {
            assert_eq!(a.trajectory(g), b.trajectory(g), "g={g}");
        }
        for path in [[0u32, 1], [1, 2], [0, 3]] {
            let p = Path::new(&path);
            assert_eq!(a.count(p), b.count(p));
            assert_eq!(
                a.occurrences(p).unwrap().collect_sorted(),
                b.occurrences(p).unwrap().collect_sorted()
            );
        }
        // Validation stays the prepare half's job.
        assert_eq!(
            b.prepare_batch(&[vec![0, 99]]).err(),
            Some(QueryError::UnknownEdge {
                edge: 99,
                n_edges: 6
            })
        );
    }

    #[test]
    fn compact_preserves_the_namespace() {
        let trajs = synthetic_trajs(30, 15, 11);
        let mut sharded = ShardedBuilder::new()
            .shards(2)
            .locate_sampling(4)
            .build(&trajs, 15);
        for batch in trajs.chunks(7) {
            sharded.append_batch(batch).unwrap();
        }
        let n = sharded.num_trajectories();
        let before: Vec<Vec<u32>> = (0..n).map(|g| sharded.trajectory(g)).collect();
        let count_before = sharded.count(Path::new(&[1, 5]));
        assert!(sharded.num_shards() > 3);
        sharded.compact(3).unwrap();
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.num_trajectories(), n);
        for (g, t) in before.iter().enumerate() {
            assert_eq!(&sharded.trajectory(g), t, "g={g}");
        }
        assert_eq!(sharded.count(Path::new(&[1, 5])), count_before);
        assert!(matches!(
            sharded.compact(0),
            Err(QueryError::InvalidInput(_))
        ));
    }

    #[test]
    fn engine_runs_sharded_batches() {
        // The batch layer needs nothing sharding-specific: ShardedCinct
        // is just another PathQuery backend.
        let trajs = paper_trajs();
        let sharded = ShardedBuilder::new()
            .shards(2)
            .locate_sampling(2)
            .build(&trajs, 6);
        let report = QueryEngine::new(&sharded).run(&[
            Query::count(&[0, 1]),
            Query::occurrences(&[1, 2]),
            Query::count(&[99]),
        ]);
        assert_eq!(report.outcomes[0].value, Ok(QueryValue::Count(2)));
        assert_eq!(
            report.outcomes[1].value,
            Ok(QueryValue::Occurrences(vec![(1, 1), (2, 0)]))
        );
        assert!(report.outcomes[2].value.is_err());
    }

    #[test]
    fn try_build_validates() {
        assert!(ShardedBuilder::new().try_build(&[], 6).is_err());
        assert!(ShardedBuilder::new().try_build(&[vec![]], 6).is_err());
        assert_eq!(
            ShardedBuilder::new().try_build(&[vec![0, 9]], 6).err(),
            Some(QueryError::UnknownEdge {
                edge: 9,
                n_edges: 6
            })
        );
    }

    #[test]
    fn pruning_skips_shards_and_preserves_outcomes() {
        // Round-robin puts g % 2: shard 0 = [0,1,4,5],[1,2], shard 1 =
        // [0,1,2],[0,3]. Edge 3 lives only in shard 1; edges 4 and 5
        // only in shard 0.
        let mut sharded = ShardedBuilder::new()
            .shards(2)
            .partition(ShardPartition::RoundRobin)
            .locate_sampling(2)
            .build(&paper_trajs(), 6);
        assert!(sharded.pruning_enabled());
        assert_eq!(sharded.pruned_edge(0, Path::new(&[0, 3])), Some(3));
        assert_eq!(sharded.pruned_edge(1, Path::new(&[0, 3])), None);
        assert_eq!(sharded.pruned_edge(1, Path::new(&[4, 5])), Some(4));
        // Metric deltas are `>=`: the counters are process-global and
        // other tests fan out concurrently.
        let m = crate::metrics::shard();
        let pruned_before = m.fanout_shards_pruned.get();
        assert_eq!(sharded.count(Path::new(&[0, 3])), 1);
        assert!(m.fanout_shards_pruned.get() > pruned_before);
        // Corpus-level instant miss: an edge no shard contains.
        let rejects_before = m.fanout_union_rejects.get();
        assert_eq!(sharded.count(Path::new(&[0, 99])), 0);
        assert!(m.fanout_union_rejects.get() > rejects_before);
        // Pruned vs unpruned fan-outs are outcome-identical everywhere.
        let mut unpruned = sharded.clone();
        unpruned.set_pruning(false);
        assert!(!unpruned.pruning_enabled());
        assert_eq!(unpruned.pruned_edge(0, Path::new(&[0, 3])), None);
        for a in 0..7u32 {
            for b in 0..7u32 {
                let p = [a, b];
                let path = Path::new(&p);
                assert_eq!(sharded.shard_ranges(path), unpruned.shard_ranges(path));
                assert_eq!(sharded.count(path), unpruned.count(path), "path {p:?}");
            }
        }
        // Appends keep the metadata (and the union) current.
        sharded.append_batch(&[vec![2, 3]]).unwrap();
        assert_eq!(sharded.pruned_edge(2, Path::new(&[2, 3])), None);
        assert_eq!(sharded.shard_id_span(2), (4, 4));
        assert_eq!(sharded.count(Path::new(&[2, 3])), 1);
        // Compaction re-derives spans and membership for the new layout.
        sharded.compact(2).unwrap();
        for s in 0..sharded.num_shards() {
            let (lo, hi) = sharded.shard_id_span(s);
            for &g in sharded.shard_globals(s) {
                assert!(sharded.shard_pruning(s).may_own_id(g));
                assert!(lo <= g && g <= hi);
            }
        }
        assert_eq!(sharded.count(Path::new(&[2, 3])), 1);
    }

    #[test]
    fn shard_id_spans_cover_ownership() {
        let trajs = synthetic_trajs(30, 15, 7);
        for partition in [ShardPartition::RoundRobin, ShardPartition::SizeBalanced] {
            let sharded = ShardedBuilder::new()
                .shards(4)
                .partition(partition)
                .build(&trajs, 15);
            for s in 0..sharded.num_shards() {
                let (lo, hi) = sharded.shard_id_span(s);
                let globals = sharded.shard_globals(s);
                assert_eq!(lo, *globals.iter().min().unwrap());
                assert_eq!(hi, *globals.iter().max().unwrap());
            }
            // The span routes every owned ID to (possibly) this shard and
            // definitively rules out IDs outside it.
            for g in 0..trajs.len() as u32 {
                let (owner, _) = sharded.shard_of(g as usize);
                assert!(sharded.shard_pruning(owner).may_own_id(g));
            }
        }
    }

    #[test]
    fn parallel_shard_build_is_deterministic() {
        let trajs = synthetic_trajs(40, 25, 9);
        let base = ShardedBuilder::new().shards(5).locate_sampling(8);
        let seq = base.threads(1).build(&trajs, 25);
        for threads in [2usize, 5, 0] {
            let par = base.threads(threads).build(&trajs, 25);
            assert_eq!(par.num_shards(), seq.num_shards());
            for s in 0..par.num_shards() {
                let mut a = Vec::new();
                let mut b = Vec::new();
                par.shard_index(s).write_to(&mut a).unwrap();
                seq.shard_index(s).write_to(&mut b).unwrap();
                assert_eq!(a, b, "shard {s} at {threads} threads");
                assert_eq!(par.shard_globals(s), seq.shard_globals(s));
            }
        }
    }
}
