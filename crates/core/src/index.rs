//! The CiNCT index: labeled BWT in an HWT/RRR + ET-graph with correction
//! terms (paper §III–§IV).

use crate::builder::CinctBuilder;
use crate::rml::Rml;
use cinct_bwt::CArray;
use cinct_fmindex::{OccurIter, OccurrenceSource, Path, PathQuery, QueryError};
use cinct_succinct::serial::{read_u64, read_usize, write_u64, write_usize, Persist};
use cinct_succinct::{
    BitRank, HuffmanWaveletTree, IntVec, RankBitVec, RrrBitVec, SpaceUsage, Symbol, SymbolSeq,
};
use std::io::{Read, Write};
use std::ops::Range;

/// Magic + version header for persisted indexes. Version 2: the RRR
/// payload dropped its persisted sample arrays (the rank directory is
/// rebuilt on load).
const MAGIC: u64 = 0x4349_4e43_5431_0002; // "CINCT1" + version 2

/// Optional locate support: a sampled suffix array lets the index map BWT
/// rows back to text positions (needed by `locate`/strict-path queries).
#[derive(Clone, Debug)]
pub(crate) struct SaSamples {
    /// Marks BWT rows `j` with `SA[j] % rate == 0`.
    pub(crate) marked: RankBitVec,
    /// `SA[j]` for marked rows, in row order, packed.
    pub(crate) values: IntVec,
    /// Sampling rate.
    pub(crate) rate: usize,
}

/// The CiNCT compressed trajectory index.
///
/// Built with [`CinctIndex::build`] (defaults: bigram-sorted RML, RRR block
/// size `b = 63`) or via [`CinctBuilder`] for the ablation knobs.
#[derive(Clone, Debug)]
pub struct CinctIndex {
    pub(crate) c: CArray,
    /// `φ(T_bwt)` in a Huffman-shaped wavelet tree over RRR bitmaps.
    pub(crate) labeled: HuffmanWaveletTree<RrrBitVec>,
    /// The RML function + ET-graph with attached `Z` terms.
    pub(crate) rml: Rml,
    /// Start offsets of each (reversed) trajectory in the text — the
    /// trajectory *directory*, an API convenience kept outside the paper's
    /// size accounting (see [`CinctIndex::directory_size_in_bytes`]).
    pub(crate) traj_starts: Vec<u32>,
    /// Row `ISA[end_k]` per trajectory: the BWT row of the `$` rotation that
    /// terminates trajectory `k` (directory).
    pub(crate) traj_rows: Vec<u32>,
    /// Optional SA sampling for locate.
    pub(crate) samples: Option<SaSamples>,
    pub(crate) n_network_edges: usize,
}

impl CinctIndex {
    /// Index a set of trajectories (edge-ID sequences over `0..n_edges`)
    /// with default parameters.
    pub fn build(trajectories: &[Vec<u32>], n_edges: usize) -> Self {
        CinctBuilder::new().build(trajectories, n_edges)
    }

    /// Number of indexed trajectories.
    pub fn num_trajectories(&self) -> usize {
        self.traj_starts.len()
    }

    /// The alphabet size σ (road segments + 2 sentinels).
    pub fn sigma(&self) -> usize {
        self.c.sigma()
    }

    /// The `C` array.
    pub fn c_array(&self) -> &CArray {
        &self.c
    }

    /// The RML/ET-graph.
    pub fn rml(&self) -> &Rml {
        &self.rml
    }

    /// The wavelet tree holding `φ(T_bwt)`.
    pub fn labeled_bwt(&self) -> &HuffmanWaveletTree<RrrBitVec> {
        &self.labeled
    }

    /// PseudoRank (paper Algorithm 2 / Theorem 2): simulate
    /// `rank_w(T_bwt, j)` from the labeled BWT, valid when
    /// `w ∈ N_out(w′)` and `C[w′] ≤ j ≤ C[w′+1]`.
    ///
    /// Returns `None` when the transition `w′ → w` never occurs (in which
    /// case the true rank answer would make the pattern vanish anyway).
    #[inline]
    pub fn pseudo_rank(&self, j: usize, w: Symbol, w_prime: Symbol) -> Option<usize> {
        let label = self.rml.label(w, w_prime)?;
        debug_assert!(self.c.get(w_prime) <= j && j <= self.c.get(w_prime + 1));
        let z = self.rml.graph().z_term(label, w_prime);
        Some((self.labeled.rank(label, j) as i64 - z) as usize)
    }

    /// `LabeledSearchFM` (paper Algorithm 3): backward search where each
    /// rank is a PseudoRank, consuming pattern symbols last-to-first.
    /// Parameterized over the per-step primitives — label/Z lookup and the
    /// paired rank (each step ranks `sp` and `ep` together) — so the
    /// optimized and seed-equivalent paths share one search loop while
    /// each keeps its own lookup pattern.
    fn labeled_search_with(
        &self,
        mut symbols: impl Iterator<Item = Symbol>,
        label_and_z: impl Fn(Symbol, Symbol) -> Option<(u32, i64)>,
        rank_pair: impl Fn(Symbol, usize, usize) -> (usize, usize),
    ) -> Option<Range<usize>> {
        let Some(mut w_prev) = symbols.next() else {
            return Some(0..self.labeled.len());
        };
        if w_prev as usize >= self.sigma() {
            return None;
        }
        let mut sp = self.c.get(w_prev);
        let mut ep = self.c.get(w_prev + 1);
        for w in symbols {
            if sp >= ep {
                return None;
            }
            if w as usize >= self.sigma() {
                return None;
            }
            let (label, z) = label_and_z(w, w_prev)?; // Line 5-6: NotFound
            let (rsp, rep) = rank_pair(label, sp, ep);
            sp = (self.c.get(w) as i64 + rsp as i64 - z) as usize;
            ep = (self.c.get(w) as i64 + rep as i64 - z) as usize;
            w_prev = w;
        }
        if sp < ep {
            Some(sp..ep)
        } else {
            None
        }
    }

    fn labeled_search(&self, symbols: impl Iterator<Item = Symbol>) -> Option<Range<usize>> {
        self.labeled_search_with(
            symbols,
            |w, w_prev| self.rml.label_and_z(w, w_prev),
            |label, i, j| self.labeled.rank_pair(label, i, j),
        )
    }

    /// Suffix range query over an **encoded** pattern. Most callers want
    /// [`PathQuery::range`] / [`CinctIndex::path_range`] over forward paths.
    pub fn suffix_range_encoded(&self, pattern: &[Symbol]) -> Option<Range<usize>> {
        self.labeled_search(pattern.iter().rev().copied())
    }

    /// Suffix range of a **forward path** of road-segment IDs
    /// (slice-flavored convenience for [`PathQuery::range`]).
    pub fn path_range(&self, path: &[u32]) -> Option<Range<usize>> {
        self.range(Path::new(path))
    }

    /// Number of times the path occurs across all trajectories
    /// (slice-flavored convenience for [`PathQuery::count`]).
    pub fn count_path(&self, path: &[u32]) -> usize {
        self.count(Path::new(path))
    }

    /// One LF-mapping step simulated with PseudoRank (the loop body of
    /// Algorithm 4): returns `(T_bwt[j] decoded, LF(j))`. The context is
    /// an `O(1)` boundary-rank lookup and the label + its rank come from
    /// one fused wavelet descent ([`SymbolSeq::access_and_rank`]).
    #[inline]
    pub fn lf_step(&self, j: usize) -> (Symbol, usize) {
        let w_prime = self.c.symbol_at(j);
        let (label, rank) = self.labeled.access_and_rank(j);
        let w = self.rml.decode(label, w_prime);
        let z = self.rml.graph().z_term(label, w_prime);
        let next = (self.c.get(w) as i64 + rank as i64 - z) as usize;
        (w, next)
    }

    /// Sub-path extraction (paper Algorithm 4): the `l` text symbols
    /// preceding position `SA[j]`, i.e. `T[SA[j]-l .. SA[j])`. Eager twin
    /// of the streaming [`PathQuery::extract_iter`].
    pub fn extract_encoded(&self, j: usize, l: usize) -> Vec<Symbol> {
        PathQuery::extract(self, j, l)
    }

    /// Recover the `id`-th trajectory (forward edge order) from the
    /// compressed index alone.
    pub fn trajectory(&self, id: usize) -> Vec<u32> {
        let len = self.trajectory_len(id);
        let row = self.traj_rows[id] as usize;
        // Row `row` is the rotation starting at the `$` that terminates the
        // reversed trajectory; extracting `len` symbols yields `T_k^r`.
        let encoded = self.extract_encoded(row, len);
        // Reversed trajectory, offset symbols → forward edges.
        encoded
            .iter()
            .rev()
            .map(|&s| s - cinct_bwt::SYMBOL_OFFSET)
            .collect()
    }

    /// Length (in edges) of the `id`-th trajectory.
    pub fn trajectory_len(&self, id: usize) -> usize {
        let start = self.traj_starts[id] as usize;
        let end = self
            .traj_starts
            .get(id + 1)
            .map_or(self.labeled.len() - 2, |&s| s as usize - 1);
        end - start
    }

    /// Locate: text position `SA[j]` for a BWT row, using the sampled
    /// suffix array. `None` if the index was built without locate support
    /// (`CinctBuilder::locate_sampling`).
    pub fn locate(&self, j: usize) -> Option<usize> {
        let samples = self.samples.as_ref()?;
        let mut j = j;
        let mut steps = 0usize;
        loop {
            if samples.marked.get(j) {
                let k = samples.marked.rank1(j);
                return Some(samples.values.get(k) as usize + steps);
            }
            let (_, next) = self.lf_step(j);
            j = next;
            steps += 1;
            debug_assert!(steps <= self.labeled.len(), "locate walk diverged");
        }
    }

    /// All `(trajectory id, offset)` occurrences of a forward path,
    /// eagerly collected and sorted.
    ///
    /// Legacy quirk this shim preserves: an *absent* path yields
    /// `Some(vec![])` even when the index has no locate support, while a
    /// *present* path without locate support yields `None`. The
    /// replacement, [`PathQuery::occurrences`], reports
    /// [`QueryError::LocateUnsupported`] up front in both cases and
    /// streams matches without building a `Vec`.
    #[deprecated(
        since = "0.2.0",
        note = "use PathQuery::occurrences (streaming, typed errors) instead"
    )]
    pub fn locate_path(&self, path: &[u32]) -> Option<Vec<(usize, usize)>> {
        let range = match self.range(Path::new(path)) {
            Some(r) => r,
            None => return Some(Vec::new()),
        };
        self.samples.as_ref()?;
        Some(OccurIter::new(self, Some(range), path.len()).collect_sorted())
    }

    /// Size of the queryable index as the paper accounts it: labeled
    /// wavelet tree + ET-graph (labels and `Z` terms) + `C` array.
    pub fn core_size_in_bytes(&self) -> usize {
        self.labeled.size_in_bytes() + self.rml.graph().size_in_bytes() + self.c.size_in_bytes()
    }

    /// Size without the ET-graph — the paper's "CiNCT (w/o ET-graph)"
    /// series in Figs. 10, 12, 13.
    pub fn size_without_et_graph(&self) -> usize {
        self.labeled.size_in_bytes() + self.c.size_in_bytes()
    }

    /// Bytes spent on the trajectory directory, optional SA samples and
    /// the `C`-array's `symbol_at` accelerator — engineering conveniences
    /// beyond the paper's data structure (which
    /// [`CinctIndex::core_size_in_bytes`] accounts).
    pub fn directory_size_in_bytes(&self) -> usize {
        self.traj_starts.capacity() * 4
            + self.traj_rows.capacity() * 4
            + self.c.accel_size_in_bytes()
            + self
                .samples
                .as_ref()
                .map_or(0, |s| s.marked.size_in_bytes() + s.values.size_in_bytes())
    }

    /// Number of road-network edges this index was built over.
    pub fn network_edges(&self) -> usize {
        self.n_network_edges
    }

    /// SA sampling rate, if the index was built with locate support.
    pub fn locate_sampling_rate(&self) -> Option<usize> {
        self.samples.as_ref().map(|s| s.rate)
    }
}

/// Seed-equivalent query paths.
///
/// These run the exact same algorithms over the exact same structures as
/// the optimized API, except every constant-factor hot-path optimization
/// is bypassed: bit-level ranks use [`cinct_succinct::BitRank::rank1_reference`]
/// (per-block directory walk + per-bit in-block decode) and the LF context
/// comes from [`CArray::symbol_at_binsearch`] (`O(log σ)`). They exist so
/// `cinct_bench`'s `hotpath` binary can measure "seed vs optimized" in one
/// build and so tests can pin both paths to each other; nothing else
/// should call them. See `PERFORMANCE.md` for the recorded baseline.
impl CinctIndex {
    /// [`CinctIndex::path_range`] over the seed-equivalent primitives
    /// (separate label and Z lookups, two single rank descents per step —
    /// the seed's exact step shape).
    pub fn path_range_reference(&self, path: &[u32]) -> Option<Range<usize>> {
        self.labeled_search_with(
            Path::new(path).search_symbols(),
            |w, w_prev| {
                let label = self.rml.label(w, w_prev)?;
                Some((label, self.rml.graph().z_term(label, w_prev)))
            },
            |label, i, j| {
                (
                    self.labeled.rank_reference(label, i),
                    self.labeled.rank_reference(label, j),
                )
            },
        )
    }

    /// [`PathQuery::count`] over the seed-equivalent rank primitive.
    pub fn count_path_reference(&self, path: &[u32]) -> usize {
        self.path_range_reference(path).map_or(0, |r| r.len())
    }

    /// [`CinctIndex::lf_step`] with binary-search context lookup and
    /// seed-equivalent wavelet-tree access/rank.
    pub fn lf_step_reference(&self, j: usize) -> (Symbol, usize) {
        let w_prime = self.c.symbol_at_binsearch(j);
        let label = self.labeled.access_reference(j);
        let w = self.rml.decode(label, w_prime);
        let z = self.rml.graph().z_term(label, w_prime);
        let next =
            (self.c.get(w) as i64 + self.labeled.rank_reference(label, j) as i64 - z) as usize;
        (w, next)
    }

    /// [`CinctIndex::locate`] walking with [`CinctIndex::lf_step_reference`].
    pub fn locate_reference(&self, j: usize) -> Option<usize> {
        let samples = self.samples.as_ref()?;
        let mut j = j;
        let mut steps = 0usize;
        loop {
            if samples.marked.get(j) {
                let k = samples.marked.rank1(j);
                return Some(samples.values.get(k) as usize + steps);
            }
            let (_, next) = self.lf_step_reference(j);
            j = next;
            steps += 1;
            debug_assert!(steps <= self.labeled.len(), "locate walk diverged");
        }
    }

    /// [`CinctIndex::extract_encoded`] walking with
    /// [`CinctIndex::lf_step_reference`]; returns forward text order.
    pub fn extract_encoded_reference(&self, j: usize, l: usize) -> Vec<Symbol> {
        let mut out = Vec::with_capacity(l);
        let mut row = j;
        for _ in 0..l {
            let (symbol, next) = self.lf_step_reference(row);
            out.push(symbol);
            row = next;
        }
        out.reverse();
        out
    }
}

impl CinctIndex {
    /// Serialize the whole index (including the trajectory directory and
    /// optional SA samples) to a stream.
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        write_u64(w, MAGIC)?;
        self.c.raw_counts().to_vec().persist(w)?;
        self.labeled.persist(w)?;
        self.rml.persist(w)?;
        self.traj_starts.persist(w)?;
        self.traj_rows.persist(w)?;
        match &self.samples {
            None => write_u64(w, 0)?,
            Some(s) => {
                write_u64(w, 1)?;
                s.marked.persist(w)?;
                s.values.persist(w)?;
                write_usize(w, s.rate)?;
            }
        }
        write_usize(w, self.n_network_edges)
    }

    /// Reload an index written with [`CinctIndex::write_to`].
    ///
    /// Structural problems surface as [`QueryError::CorruptIndex`];
    /// truncated or failing streams as [`QueryError::Io`].
    pub fn read_from(r: &mut dyn Read) -> Result<Self, QueryError> {
        let bad = |msg: &str| QueryError::CorruptIndex(msg.to_string());
        if read_u64(r)? != MAGIC {
            return Err(bad("not a CiNCT index (bad magic)"));
        }
        let counts: Vec<u64> = Persist::restore(r)?;
        let c = CArray::from_raw_counts(counts).ok_or_else(|| bad("corrupt C array"))?;
        let labeled = HuffmanWaveletTree::<RrrBitVec>::restore(r)?;
        let rml = Rml::restore(r)?;
        let traj_starts: Vec<u32> = Persist::restore(r)?;
        let traj_rows: Vec<u32> = Persist::restore(r)?;
        if traj_rows.len() != traj_starts.len() {
            return Err(bad("trajectory directory mismatch"));
        }
        let samples = match read_u64(r)? {
            0 => None,
            1 => Some(SaSamples {
                marked: RankBitVec::restore(r)?,
                values: IntVec::restore(r)?,
                rate: read_usize(r)?,
            }),
            _ => return Err(bad("bad samples tag")),
        };
        let n_network_edges = read_usize(r)?;
        Ok(Self {
            c,
            labeled,
            rml,
            traj_starts,
            traj_rows,
            samples,
            n_network_edges,
        })
    }
}

impl PathQuery for CinctIndex {
    fn text_len(&self) -> usize {
        self.labeled.len()
    }

    fn sigma(&self) -> usize {
        self.c.sigma()
    }

    fn size_in_bytes(&self) -> usize {
        self.core_size_in_bytes()
    }

    /// Backward search consumes the trajectory-string pattern last symbol
    /// first; trajectories are stored reversed, so that is the forward
    /// edge order of `path`.
    fn range(&self, path: &Path) -> Option<Range<usize>> {
        self.labeled_search(path.search_symbols())
    }

    fn lf_step(&self, j: usize) -> (Symbol, usize) {
        CinctIndex::lf_step(self, j)
    }

    fn occurrences(&self, path: &Path) -> Result<cinct_fmindex::OccurIter<'_>, QueryError> {
        self.validate_path(path)?;
        if self.samples.is_none() {
            return Err(QueryError::LocateUnsupported);
        }
        Ok(OccurIter::new(self, self.range(path), path.len()))
    }
}

impl OccurrenceSource for CinctIndex {
    fn resolve_row(&self, j: usize, path_len: usize) -> (usize, usize) {
        let text_pos = self.locate(j).expect("occurrences() checked SA samples");
        // text_pos is the start (in T) of the suffix matching the encoded
        // (reversed) pattern; that is the position of the *last* path edge
        // within the reversed trajectory.
        let t = match self.traj_starts.binary_search(&(text_pos as u32)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let len = self.trajectory_len(t);
        let start_in_rev = text_pos - self.traj_starts[t] as usize;
        // Reversed offset of the path's last edge → forward offset of its
        // first edge.
        (t, len - start_in_rev - path_len)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indices appear in assertion messages
mod tests {
    use super::*;
    use crate::builder::CinctBuilder;
    use crate::rml::LabelingStrategy;
    use cinct_bwt::TrajectoryString;

    fn paper_trajs() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
    }

    #[test]
    fn paper_suffix_range() {
        let idx = CinctIndex::build(&paper_trajs(), 6);
        // R(BA) = [9, 11): path A→B.
        assert_eq!(idx.path_range(&[0, 1]), Some(9..11));
        assert_eq!(idx.count_path(&[0, 1]), 2);
        assert_eq!(idx.count_path(&[0, 1, 4, 5]), 1);
        assert_eq!(idx.count_path(&[1, 2]), 2);
        assert_eq!(idx.count_path(&[3, 0]), 0); // D then A never happens
        assert_eq!(idx.count_path(&[5, 0]), 0);
    }

    #[test]
    fn matches_reference_fm_index() {
        let trajs = paper_trajs();
        let ts = TrajectoryString::build(&trajs, 6);
        let reference = cinct_fmindex::Ufmi::from_text(ts.text(), ts.sigma());
        let idx = CinctIndex::build(&trajs, 6);
        // Exhaustive agreement over all edge paths of length ≤ 3.
        for a in 0..6u32 {
            for b in 0..6u32 {
                for c in 0..6u32 {
                    for path in [vec![a], vec![a, b], vec![a, b, c]] {
                        let enc = TrajectoryString::encode_pattern(&path);
                        assert_eq!(
                            idx.suffix_range_encoded(&enc),
                            reference.suffix_range(&enc),
                            "path {path:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trajectory_recovery() {
        let trajs = paper_trajs();
        let idx = CinctIndex::build(&trajs, 6);
        assert_eq!(idx.num_trajectories(), 4);
        for (i, t) in trajs.iter().enumerate() {
            assert_eq!(&idx.trajectory(i), t, "trajectory {i}");
            assert_eq!(idx.trajectory_len(i), t.len());
        }
    }

    #[test]
    fn extract_matches_reference() {
        let trajs = paper_trajs();
        let ts = TrajectoryString::build(&trajs, 6);
        let reference = cinct_fmindex::Ufmi::from_text(ts.text(), ts.sigma());
        let idx = CinctIndex::build(&trajs, 6);
        let n = ts.len();
        for j in 0..n {
            for l in [1usize, 2, 4] {
                assert_eq!(
                    idx.extract_encoded(j, l),
                    reference.extract(j, l),
                    "j={j} l={l}"
                );
            }
        }
    }

    #[test]
    fn locate_roundtrip() {
        let trajs = paper_trajs();
        let idx = CinctBuilder::new().locate_sampling(2).build(&trajs, 6);
        let ts = TrajectoryString::build(&trajs, 6);
        let sa = cinct_bwt::sais::naive_suffix_array(ts.text());
        for j in 0..ts.len() {
            assert_eq!(idx.locate(j), Some(sa[j] as usize), "row {j}");
        }
    }

    #[test]
    fn occurrences_stream_matches() {
        let trajs = paper_trajs();
        let idx = CinctBuilder::new().locate_sampling(4).build(&trajs, 6);
        // Path A→B occurs at offset 0 of trajectories 0 and 1.
        let occ = idx.occurrences(Path::new(&[0, 1])).expect("locate enabled");
        assert_eq!(occ.remaining(), 2);
        assert_eq!(occ.collect_sorted(), vec![(0, 0), (1, 0)]);
        // Path B→C occurs in trajectory 1 (offset 1) and 2 (offset 0).
        let occ = idx.occurrences(Path::new(&[1, 2])).expect("locate enabled");
        assert_eq!(occ.collect_sorted(), vec![(1, 1), (2, 0)]);
        // Absent path → empty iterator, not an error.
        let occ = idx.occurrences(Path::new(&[5, 5])).expect("locate enabled");
        assert_eq!(occ.count(), 0);
        // Malformed paths are typed errors.
        assert_eq!(
            idx.occurrences(Path::new(&[])).err(),
            Some(QueryError::EmptyPattern)
        );
        assert_eq!(
            idx.occurrences(Path::new(&[0, 77])).err(),
            Some(QueryError::UnknownEdge {
                edge: 77,
                n_edges: 6
            })
        );
    }

    #[test]
    #[allow(deprecated)]
    fn locate_path_shim_keeps_legacy_contract() {
        let trajs = paper_trajs();
        let idx = CinctBuilder::new().locate_sampling(4).build(&trajs, 6);
        assert_eq!(idx.locate_path(&[0, 1]).unwrap(), vec![(0, 0), (1, 0)]);
        assert_eq!(idx.locate_path(&[5, 5]).unwrap(), vec![]);
    }

    #[test]
    #[allow(deprecated)]
    fn locate_without_support_is_an_error() {
        let idx = CinctIndex::build(&paper_trajs(), 6);
        assert_eq!(idx.locate(0), None);
        assert_eq!(
            idx.occurrences(Path::new(&[0, 1])).err(),
            Some(QueryError::LocateUnsupported)
        );
        // Even an absent path reports the capability gap up front...
        assert_eq!(
            idx.occurrences(Path::new(&[5, 5])).err(),
            Some(QueryError::LocateUnsupported)
        );
        // ...whereas the legacy shim conflated the two.
        assert!(idx.locate_path(&[0, 1]).is_none());
        assert_eq!(idx.locate_path(&[5, 5]), Some(vec![]));
    }

    #[test]
    fn pseudo_rank_equals_true_rank() {
        // Theorem 2 / balancing equation (5): for every context w′ and
        // every w ∈ N_out(w′), PseudoRank equals the naive rank over T_bwt.
        let trajs = paper_trajs();
        let ts = TrajectoryString::build(&trajs, 6);
        let (_, tbwt) = cinct_bwt::bwt::bwt(ts.text(), ts.sigma());
        let idx = CinctIndex::build(&trajs, 6);
        for w_prime in 0..idx.sigma() as u32 {
            let range = idx.c.symbol_range(w_prime);
            for w in idx.rml.graph().out(w_prime) {
                for j in range.start..=range.end {
                    let truth = tbwt[..j].iter().filter(|&&s| s == w).count();
                    assert_eq!(
                        idx.pseudo_rank(j, w, w_prime),
                        Some(truth),
                        "w={w} w'={w_prime} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn reference_paths_agree_with_optimized() {
        // The seed-equivalent bench paths must stay answer-identical to the
        // optimized hot path over every primitive they reimplement.
        let trajs = paper_trajs();
        let idx = CinctBuilder::new().locate_sampling(2).build(&trajs, 6);
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(
                    idx.path_range(&[a, b]),
                    idx.path_range_reference(&[a, b]),
                    "range [{a},{b}]"
                );
                assert_eq!(idx.count_path(&[a, b]), idx.count_path_reference(&[a, b]));
            }
        }
        let n = idx.text_len();
        for j in 0..n {
            assert_eq!(idx.lf_step(j), idx.lf_step_reference(j), "lf({j})");
            assert_eq!(idx.locate(j), idx.locate_reference(j), "locate({j})");
            assert_eq!(
                idx.extract_encoded(j, 4.min(n)),
                idx.extract_encoded_reference(j, 4.min(n)),
                "extract({j})"
            );
        }
    }

    #[test]
    fn random_labeling_still_correct() {
        // Fig. 14's random strategy changes size/speed, never answers.
        let trajs = paper_trajs();
        let sorted = CinctIndex::build(&trajs, 6);
        let random = CinctBuilder::new()
            .labeling(LabelingStrategy::Random { seed: 99 })
            .build(&trajs, 6);
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(
                    sorted.path_range(&[a, b]),
                    random.path_range(&[a, b]),
                    "path [{a},{b}]"
                );
            }
        }
    }

    #[test]
    fn block_size_variants_agree() {
        let trajs = paper_trajs();
        let b63 = CinctBuilder::new().block_size(63).build(&trajs, 6);
        let b15 = CinctBuilder::new().block_size(15).build(&trajs, 6);
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(b63.path_range(&[a, b]), b15.path_range(&[a, b]));
            }
        }
    }

    #[test]
    fn size_accounting_separates_directory() {
        let idx = CinctBuilder::new()
            .locate_sampling(4)
            .build(&paper_trajs(), 6);
        assert!(idx.core_size_in_bytes() > 0);
        assert!(idx.size_without_et_graph() < idx.core_size_in_bytes());
        assert!(idx.directory_size_in_bytes() > 0);
    }

    #[test]
    fn empty_pattern() {
        let idx = CinctIndex::build(&paper_trajs(), 6);
        assert_eq!(idx.suffix_range_encoded(&[]), Some(0..16));
    }
}
