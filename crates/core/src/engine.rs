//! Batch query evaluation over any [`PathQuery`] backend.
//!
//! The bench harness, the CLI, and future batching/sharding layers all
//! need the same thing: take a pile of heterogeneous queries, run them
//! against *some* index behind `&dyn PathQuery`, and get back per-query
//! results with timing — without writing per-backend dispatch. That is
//! [`QueryEngine`]:
//!
//! ```
//! use cinct::engine::{Query, QueryEngine, QueryValue};
//! use cinct::CinctBuilder;
//!
//! let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
//! let index = CinctBuilder::new().locate_sampling(4).build(&trajs, 6);
//! let engine = QueryEngine::new(&index);
//! let report = engine.run(&[
//!     Query::count(&[0, 1]),
//!     Query::occurrences(&[1, 2]),
//!     Query::count(&[99]), // unknown edge: typed per-query error
//! ]);
//! assert_eq!(report.outcomes[0].value, Ok(QueryValue::Count(2)));
//! assert_eq!(
//!     report.outcomes[1].value,
//!     Ok(QueryValue::Occurrences(vec![(1, 1), (2, 0)]))
//! );
//! assert!(report.outcomes[2].value.is_err());
//! assert_eq!(report.hits(), 2);
//! ```

use cinct_fmindex::{Path, PathQuery, QueryError};
use std::ops::Range;
use std::time::{Duration, Instant};

/// One query in a batch. Constructors take forward edge paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Number of occurrences of the path.
    Count(Vec<u32>),
    /// Suffix range of the path (`None` = absent).
    Range(Vec<u32>),
    /// Every `(trajectory, offset)` occurrence (needs locate support).
    Occurrences(Vec<u32>),
    /// `len` text symbols preceding `SA[row]`, forward text order.
    Extract {
        /// BWT row to start the LF walk from.
        row: usize,
        /// Number of symbols to extract.
        len: usize,
    },
}

impl Query {
    /// A counting query.
    pub fn count(path: &[u32]) -> Self {
        Query::Count(path.to_vec())
    }

    /// A suffix-range query.
    pub fn range(path: &[u32]) -> Self {
        Query::Range(path.to_vec())
    }

    /// An occurrence-listing query.
    pub fn occurrences(path: &[u32]) -> Self {
        Query::Occurrences(path.to_vec())
    }

    /// An extraction query.
    pub fn extract(row: usize, len: usize) -> Self {
        Query::Extract { row, len }
    }
}

/// The payload of a successfully evaluated [`Query`] (same arm).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryValue {
    /// Occurrence count.
    Count(usize),
    /// Suffix range, `None` when the path is absent.
    Range(Option<Range<usize>>),
    /// Matches sorted by `(trajectory, offset)`.
    Occurrences(Vec<(usize, usize)>),
    /// Extracted text symbols (encoded), forward order.
    Extract(Vec<u32>),
}

impl QueryValue {
    /// How many matches this result represents (extractions count as the
    /// number of symbols recovered).
    pub fn matches(&self) -> usize {
        match self {
            QueryValue::Count(n) => *n,
            QueryValue::Range(r) => r.as_ref().map_or(0, |r| r.len()),
            QueryValue::Occurrences(v) => v.len(),
            QueryValue::Extract(v) => v.len(),
        }
    }
}

/// One query's result + wall-clock cost.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The result, or the typed error this query (alone) failed with.
    pub value: Result<QueryValue, QueryError>,
    /// Time spent evaluating this query.
    pub elapsed: Duration,
}

/// Results of a batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-query outcomes, in input order.
    pub outcomes: Vec<QueryOutcome>,
    /// Total wall-clock across the batch (sum of per-query costs).
    pub elapsed: Duration,
}

impl BatchReport {
    /// Queries that succeeded with at least one match.
    pub fn hits(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.value.as_ref().is_ok_and(|v| v.matches() > 0))
            .count()
    }

    /// Total matches across all successful queries.
    pub fn total_matches(&self) -> usize {
        self.outcomes
            .iter()
            .filter_map(|o| o.value.as_ref().ok())
            .map(QueryValue::matches)
            .sum()
    }

    /// Queries that failed with a typed error.
    pub fn errors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.value.is_err()).count()
    }

    /// Mean microseconds per query.
    pub fn mean_us(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.elapsed.as_secs_f64() * 1e6 / self.outcomes.len() as f64
    }
}

/// Evaluates query batches against one backend. Backend-agnostic: anything
/// implementing [`PathQuery`] (CiNCT, the five baselines, the temporal
/// index) plugs in through a trait object.
pub struct QueryEngine<'a> {
    backend: &'a dyn PathQuery,
}

impl<'a> QueryEngine<'a> {
    /// Wrap a backend.
    pub fn new(backend: &'a (dyn PathQuery + 'a)) -> Self {
        QueryEngine { backend }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &dyn PathQuery {
        self.backend
    }

    /// Evaluate one query.
    pub fn run_one(&self, query: &Query) -> QueryOutcome {
        let t0 = Instant::now();
        let value = match query {
            Query::Count(path) => self
                .backend
                .try_range(Path::new(path))
                .map(|r| QueryValue::Count(r.map_or(0, |r| r.len()))),
            Query::Range(path) => self
                .backend
                .try_range(Path::new(path))
                .map(QueryValue::Range),
            Query::Occurrences(path) => self
                .backend
                .occurrences(Path::new(path))
                .map(|it| QueryValue::Occurrences(it.collect_sorted())),
            Query::Extract { row, len } => {
                let n = self.backend.text_len();
                if *row >= n {
                    Err(QueryError::InvalidInput(format!(
                        "extract row {row} out of range (text length {n})"
                    )))
                } else {
                    Ok(QueryValue::Extract(
                        cinct_fmindex::ExtractIter::new(self.backend, *row, *len).collect_forward(),
                    ))
                }
            }
        };
        QueryOutcome {
            value,
            elapsed: t0.elapsed(),
        }
    }

    /// Evaluate a slice of queries, returning per-query results + timing.
    pub fn run(&self, queries: &[Query]) -> BatchReport {
        let mut report = BatchReport {
            outcomes: Vec::with_capacity(queries.len()),
            elapsed: Duration::ZERO,
        };
        for q in queries {
            let outcome = self.run_one(q);
            report.elapsed += outcome.elapsed;
            report.outcomes.push(outcome);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CinctBuilder;
    use crate::index::CinctIndex;
    use cinct_bwt::TrajectoryString;
    use cinct_fmindex::Ufmi;

    fn paper_trajs() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
    }

    #[test]
    fn batch_over_cinct() {
        let idx = CinctBuilder::new()
            .locate_sampling(2)
            .build(&paper_trajs(), 6);
        let engine = QueryEngine::new(&idx);
        let report = engine.run(&[
            Query::count(&[0, 1]),
            Query::range(&[0, 1]),
            Query::range(&[3, 0]),
            Query::occurrences(&[1, 2]),
            Query::extract(0, 3),
        ]);
        assert_eq!(report.outcomes.len(), 5);
        assert_eq!(report.outcomes[0].value, Ok(QueryValue::Count(2)));
        assert_eq!(report.outcomes[1].value, Ok(QueryValue::Range(Some(9..11))));
        assert_eq!(report.outcomes[2].value, Ok(QueryValue::Range(None)));
        assert_eq!(
            report.outcomes[3].value,
            Ok(QueryValue::Occurrences(vec![(1, 1), (2, 0)]))
        );
        assert!(matches!(
            report.outcomes[4].value,
            Ok(QueryValue::Extract(ref v)) if v.len() == 3
        ));
        assert_eq!(report.errors(), 0);
        // The absent-path range query succeeded but matched nothing.
        assert_eq!(report.hits(), 4);
    }

    #[test]
    fn per_query_errors_do_not_poison_the_batch() {
        let idx = CinctIndex::build(&paper_trajs(), 6);
        let engine = QueryEngine::new(&idx);
        let report = engine.run(&[
            Query::count(&[0, 1]),
            Query::count(&[42]),               // unknown edge
            Query::occurrences(&[0]),          // no locate support
            Query::extract(idx.text_len(), 3), // row out of range
            Query::count(&[1, 2]),
        ]);
        assert_eq!(report.errors(), 3);
        assert_eq!(report.outcomes[0].value, Ok(QueryValue::Count(2)));
        assert_eq!(
            report.outcomes[1].value,
            Err(QueryError::UnknownEdge {
                edge: 42,
                n_edges: 6
            })
        );
        assert_eq!(report.outcomes[2].value, Err(QueryError::LocateUnsupported));
        assert!(matches!(
            report.outcomes[3].value,
            Err(QueryError::InvalidInput(_))
        ));
        assert_eq!(report.outcomes[4].value, Ok(QueryValue::Count(2)));
    }

    #[test]
    fn same_batch_any_backend() {
        let trajs = paper_trajs();
        let ts = TrajectoryString::build(&trajs, 6);
        let cinct = CinctIndex::build(&trajs, 6);
        let ufmi = Ufmi::from_text(ts.text(), ts.sigma());
        let batch = [
            Query::count(&[0, 1]),
            Query::count(&[1, 2]),
            Query::range(&[0, 3]),
        ];
        let a = QueryEngine::new(&cinct).run(&batch);
        let b = QueryEngine::new(&ufmi).run(&batch);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.value, y.value);
        }
        assert_eq!(a.total_matches(), b.total_matches());
    }
}
