//! Batch query evaluation over any [`PathQuery`] backend.
//!
//! The bench harness, the CLI, and future batching/sharding layers all
//! need the same thing: take a pile of heterogeneous queries, run them
//! against *some* index behind `&dyn PathQuery`, and get back per-query
//! results with timing — without writing per-backend dispatch. That is
//! [`QueryEngine`]:
//!
//! ```
//! use cinct::engine::{Query, QueryEngine, QueryValue};
//! use cinct::CinctBuilder;
//!
//! let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
//! let index = CinctBuilder::new().locate_sampling(4).build(&trajs, 6);
//! let engine = QueryEngine::new(&index);
//! let report = engine.run(&[
//!     Query::count(&[0, 1]),
//!     Query::occurrences(&[1, 2]),
//!     Query::count(&[99]), // unknown edge: typed per-query error
//! ]);
//! assert_eq!(report.outcomes[0].value, Ok(QueryValue::Count(2)));
//! assert_eq!(
//!     report.outcomes[1].value,
//!     Ok(QueryValue::Occurrences(vec![(1, 1), (2, 0)]))
//! );
//! assert!(report.outcomes[2].value.is_err());
//! assert_eq!(report.hits(), 2);
//! ```

use cinct_fmindex::{Path, PathQuery, QueryError};
use std::ops::Range;
use std::time::{Duration, Instant};

/// One query in a batch. Constructors take forward edge paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Number of occurrences of the path.
    Count(Vec<u32>),
    /// Suffix range of the path (`None` = absent).
    Range(Vec<u32>),
    /// Every `(trajectory, offset)` occurrence (needs locate support).
    Occurrences(Vec<u32>),
    /// `len` text symbols preceding `SA[row]`, forward text order.
    Extract {
        /// BWT row to start the LF walk from.
        row: usize,
        /// Number of symbols to extract.
        len: usize,
    },
}

impl Query {
    /// A counting query.
    pub fn count(path: &[u32]) -> Self {
        Query::Count(path.to_vec())
    }

    /// A suffix-range query.
    pub fn range(path: &[u32]) -> Self {
        Query::Range(path.to_vec())
    }

    /// An occurrence-listing query.
    pub fn occurrences(path: &[u32]) -> Self {
        Query::Occurrences(path.to_vec())
    }

    /// An extraction query.
    pub fn extract(row: usize, len: usize) -> Self {
        Query::Extract { row, len }
    }
}

/// The payload of a successfully evaluated [`Query`] (same arm).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryValue {
    /// Occurrence count.
    Count(usize),
    /// Suffix range, `None` when the path is absent.
    Range(Option<Range<usize>>),
    /// Matches sorted by `(trajectory, offset)`.
    Occurrences(Vec<(usize, usize)>),
    /// Extracted text symbols (encoded), forward order.
    Extract(Vec<u32>),
}

impl QueryValue {
    /// How many matches this result represents (extractions count as the
    /// number of symbols recovered).
    pub fn matches(&self) -> usize {
        match self {
            QueryValue::Count(n) => *n,
            QueryValue::Range(r) => r.as_ref().map_or(0, |r| r.len()),
            QueryValue::Occurrences(v) => v.len(),
            QueryValue::Extract(v) => v.len(),
        }
    }
}

/// One query's result + wall-clock cost.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The result, or the typed error this query (alone) failed with.
    pub value: Result<QueryValue, QueryError>,
    /// Time spent evaluating this query.
    pub elapsed: Duration,
}

/// Results of a batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-query outcomes, in input order.
    pub outcomes: Vec<QueryOutcome>,
    /// Total wall-clock across the batch (sum of per-query costs).
    pub elapsed: Duration,
}

impl BatchReport {
    /// Queries that succeeded with at least one match.
    pub fn hits(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.value.as_ref().is_ok_and(|v| v.matches() > 0))
            .count()
    }

    /// Total matches across all successful queries.
    pub fn total_matches(&self) -> usize {
        self.outcomes
            .iter()
            .filter_map(|o| o.value.as_ref().ok())
            .map(QueryValue::matches)
            .sum()
    }

    /// Queries that failed with a typed error.
    pub fn errors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.value.is_err()).count()
    }

    /// Mean microseconds per query.
    pub fn mean_us(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.elapsed.as_secs_f64() * 1e6 / self.outcomes.len() as f64
    }
}

/// Evaluates query batches against one backend. Backend-agnostic: anything
/// implementing [`PathQuery`] (CiNCT, the five baselines, the temporal
/// index) plugs in through a trait object.
///
/// By default batches run sequentially on the caller's thread. Heavy
/// traffic turns on the parallel mode with [`QueryEngine::parallel`]:
/// the batch is split into one contiguous chunk per thread, evaluated on
/// a rayon fork-join scope (indexes are immutable, so sharing the
/// `&dyn PathQuery` is free), and reassembled **in input order** with
/// per-query timings — the report is value- and order-identical to a
/// sequential run, only wall-clock differs.
pub struct QueryEngine<'a> {
    backend: &'a dyn PathQuery,
    n_threads: usize,
}

/// Evaluate one query against a backend (shared by the sequential loop and
/// the per-thread chunk workers). Records into the process metrics
/// ([`crate::metrics::engine`]): a handful of relaxed-atomic samples per
/// query, reusing the `Instant` the outcome already needs.
fn evaluate(backend: &dyn PathQuery, query: &Query) -> QueryOutcome {
    let t0 = Instant::now();
    let value = match query {
        Query::Count(path) => backend
            .try_range(Path::new(path))
            .map(|r| QueryValue::Count(r.map_or(0, |r| r.len()))),
        Query::Range(path) => backend.try_range(Path::new(path)).map(QueryValue::Range),
        Query::Occurrences(path) => backend
            .occurrences(Path::new(path))
            .map(|it| QueryValue::Occurrences(it.collect_sorted())),
        Query::Extract { row, len } => {
            let n = backend.text_len();
            if *row >= n {
                Err(QueryError::InvalidInput(format!(
                    "extract row {row} out of range (text length {n})"
                )))
            } else {
                Ok(QueryValue::Extract(
                    cinct_fmindex::ExtractIter::new(backend, *row, *len).collect_forward(),
                ))
            }
        }
    };
    let elapsed = t0.elapsed();
    let m = crate::metrics::engine();
    m.queries.inc();
    if value.is_err() {
        m.errors.inc();
    }
    match query {
        Query::Count(_) => &m.count_ns,
        Query::Range(_) => &m.range_ns,
        Query::Occurrences(_) => &m.occurrences_ns,
        Query::Extract { .. } => &m.extract_ns,
    }
    .record_duration(elapsed);
    QueryOutcome { value, elapsed }
}

impl<'a> QueryEngine<'a> {
    /// Wrap a backend (sequential evaluation).
    pub fn new(backend: &'a (dyn PathQuery + 'a)) -> Self {
        QueryEngine {
            backend,
            n_threads: 1,
        }
    }

    /// Evaluate batches on up to `n_threads` threads. **`0` means "auto"**
    /// (the machine's available parallelism) — the same convention as
    /// `CinctBuilder::threads` and every other thread knob in the
    /// workspace ([`rayon::resolve_threads`]); `1` restores the
    /// deterministic sequential path. The knob is stored raw and resolved
    /// at each [`QueryEngine::run`], so an engine configured with `0`
    /// tracks the host it runs on, exactly like a builder configured with
    /// `threads(0)`. Parallel runs return outcomes in input order with
    /// values identical to a sequential run.
    pub fn parallel(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads;
        self
    }

    /// The configured thread knob, unresolved (`0` = auto, `1` =
    /// sequential) — what was passed to [`QueryEngine::parallel`].
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The thread count a [`QueryEngine::run`] call would actually use:
    /// the configured knob with `0` resolved to the machine's available
    /// parallelism.
    pub fn effective_threads(&self) -> usize {
        rayon::resolve_threads(self.n_threads)
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &dyn PathQuery {
        self.backend
    }

    /// Evaluate one query.
    pub fn run_one(&self, query: &Query) -> QueryOutcome {
        evaluate(self.backend, query)
    }

    /// Evaluate a slice of queries, returning per-query results + timing
    /// in input order. Uses the parallel fork-join path when configured
    /// with [`QueryEngine::parallel`] and the batch is large enough to
    /// split; otherwise the sequential loop.
    pub fn run(&self, queries: &[Query]) -> BatchReport {
        let threads = self.effective_threads();
        let m = crate::metrics::engine();
        m.batch_size.record(queries.len() as u64);
        m.threads.set(threads.min(queries.len().max(1)) as u64);
        let outcomes = if threads > 1 && queries.len() > 1 {
            self.run_chunked(queries, threads)
        } else {
            queries.iter().map(|q| self.run_one(q)).collect()
        };
        let elapsed = outcomes.iter().map(|o| o.elapsed).sum();
        BatchReport { outcomes, elapsed }
    }

    /// Fan the batch out as one contiguous chunk per thread; chunk results
    /// land in pre-split slots, so reassembly preserves input order without
    /// any post-sort.
    fn run_chunked(&self, queries: &[Query], threads: usize) -> Vec<QueryOutcome> {
        let chunk_len = queries.len().div_ceil(threads);
        let mut chunk_outcomes: Vec<Vec<QueryOutcome>> = Vec::new();
        chunk_outcomes.resize_with(queries.len().div_ceil(chunk_len), Vec::new);
        let backend = self.backend;
        rayon::scope(|s| {
            for (chunk, out) in queries.chunks(chunk_len).zip(chunk_outcomes.iter_mut()) {
                s.spawn(move |_| {
                    *out = chunk.iter().map(|q| evaluate(backend, q)).collect();
                });
            }
        });
        chunk_outcomes.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CinctBuilder;
    use crate::index::CinctIndex;
    use cinct_bwt::TrajectoryString;
    use cinct_fmindex::Ufmi;

    fn paper_trajs() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
    }

    #[test]
    fn batch_over_cinct() {
        let idx = CinctBuilder::new()
            .locate_sampling(2)
            .build(&paper_trajs(), 6);
        let engine = QueryEngine::new(&idx);
        let report = engine.run(&[
            Query::count(&[0, 1]),
            Query::range(&[0, 1]),
            Query::range(&[3, 0]),
            Query::occurrences(&[1, 2]),
            Query::extract(0, 3),
        ]);
        assert_eq!(report.outcomes.len(), 5);
        assert_eq!(report.outcomes[0].value, Ok(QueryValue::Count(2)));
        assert_eq!(report.outcomes[1].value, Ok(QueryValue::Range(Some(9..11))));
        assert_eq!(report.outcomes[2].value, Ok(QueryValue::Range(None)));
        assert_eq!(
            report.outcomes[3].value,
            Ok(QueryValue::Occurrences(vec![(1, 1), (2, 0)]))
        );
        assert!(matches!(
            report.outcomes[4].value,
            Ok(QueryValue::Extract(ref v)) if v.len() == 3
        ));
        assert_eq!(report.errors(), 0);
        // The absent-path range query succeeded but matched nothing.
        assert_eq!(report.hits(), 4);
    }

    #[test]
    fn per_query_errors_do_not_poison_the_batch() {
        let idx = CinctIndex::build(&paper_trajs(), 6);
        let engine = QueryEngine::new(&idx);
        let report = engine.run(&[
            Query::count(&[0, 1]),
            Query::count(&[42]),               // unknown edge
            Query::occurrences(&[0]),          // no locate support
            Query::extract(idx.text_len(), 3), // row out of range
            Query::count(&[1, 2]),
        ]);
        assert_eq!(report.errors(), 3);
        assert_eq!(report.outcomes[0].value, Ok(QueryValue::Count(2)));
        assert_eq!(
            report.outcomes[1].value,
            Err(QueryError::UnknownEdge {
                edge: 42,
                n_edges: 6
            })
        );
        assert_eq!(report.outcomes[2].value, Err(QueryError::LocateUnsupported));
        assert!(matches!(
            report.outcomes[3].value,
            Err(QueryError::InvalidInput(_))
        ));
        assert_eq!(report.outcomes[4].value, Ok(QueryValue::Count(2)));
    }

    #[test]
    fn parallel_matches_sequential_on_mixed_10k() {
        // Acceptance gate: a 10k mixed batch (counts, ranges, occurrence
        // listings, extractions, malformed queries) must produce
        // bit-identical outcomes — order and values — at every thread
        // count, including typed per-query errors.
        let idx = CinctBuilder::new()
            .locate_sampling(2)
            .build(&paper_trajs(), 6);
        let n = idx.text_len();
        let mut x = 1u64;
        let queries: Vec<Query> = (0..10_000)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // % 7 occasionally lands on edge 6 (unknown): error arm.
                let a = ((x >> 33) % 7) as u32;
                let b = ((x >> 43) % 7) as u32;
                match i % 5 {
                    0 => Query::count(&[a, b]),
                    1 => Query::range(&[a]),
                    2 => Query::occurrences(&[a, b]),
                    3 => Query::extract(i % n, 4),
                    _ => Query::count(&[a]),
                }
            })
            .collect();
        let sequential = QueryEngine::new(&idx).run(&queries);
        assert!(sequential.errors() > 0, "mixed batch should include errors");
        for threads in [2usize, 3, 8, 0] {
            let parallel = QueryEngine::new(&idx).parallel(threads).run(&queries);
            assert_eq!(parallel.outcomes.len(), sequential.outcomes.len());
            for (i, (p, s)) in parallel
                .outcomes
                .iter()
                .zip(&sequential.outcomes)
                .enumerate()
            {
                assert_eq!(p.value, s.value, "query {i} at {threads} threads");
            }
            assert_eq!(parallel.hits(), sequential.hits());
            assert_eq!(parallel.total_matches(), sequential.total_matches());
            assert_eq!(parallel.errors(), sequential.errors());
        }
    }

    #[test]
    fn parallel_knob_defaults() {
        let idx = CinctIndex::build(&paper_trajs(), 6);
        assert_eq!(QueryEngine::new(&idx).n_threads(), 1);
        assert_eq!(QueryEngine::new(&idx).parallel(4).n_threads(), 4);
        // 0 means "auto" — stored raw, resolved at run time, matching
        // CinctBuilder::threads(0).
        let auto = QueryEngine::new(&idx).parallel(0);
        assert_eq!(auto.n_threads(), 0);
        assert_eq!(auto.effective_threads(), rayon::current_num_threads());
        assert!(auto.effective_threads() >= 1);
        // Tiny batches still work in parallel mode (fewer chunks than
        // threads).
        let report = QueryEngine::new(&idx)
            .parallel(8)
            .run(&[Query::count(&[0, 1]), Query::count(&[1, 2])]);
        assert_eq!(report.outcomes[0].value, Ok(QueryValue::Count(2)));
        assert_eq!(report.outcomes[1].value, Ok(QueryValue::Count(2)));
    }

    #[test]
    fn same_batch_any_backend() {
        let trajs = paper_trajs();
        let ts = TrajectoryString::build(&trajs, 6);
        let cinct = CinctIndex::build(&trajs, 6);
        let ufmi = Ufmi::from_text(ts.text(), ts.sigma());
        let batch = [
            Query::count(&[0, 1]),
            Query::count(&[1, 2]),
            Query::range(&[0, 3]),
        ];
        let a = QueryEngine::new(&cinct).run(&batch);
        let b = QueryEngine::new(&ufmi).run(&batch);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.value, y.value);
        }
        assert_eq!(a.total_matches(), b.total_matches());
    }
}
