//! Explain-mode tracing: a per-shard, per-stage breakdown of one query.
//!
//! The CLI's `--trace` flag answers "where did this query's time go, and
//! where did its matches come from?" without touching the hot path: a
//! trace **re-runs** the query with staged timing instead of threading
//! state through the search loops.
//!
//! The stage structure mirrors the engine's actual evaluation:
//!
//! 1. **pattern preprocessing** — edge validation against the network
//!    alphabet (what [`PathQuery::try_range`] checks before searching);
//! 2. **backward-search range narrowing** — one step per edge. The
//!    trajectory string stores *reversed* trajectories, so backward
//!    search consumes the path forward: the suffix range of prefix
//!    `P[..k]` **is** the intermediate range after `k` search steps,
//!    which lets the trace recover every intermediate range by prefix
//!    re-query (`O(L²)` LF steps total — explain mode only);
//! 3. **fan-out remap** — for locate traces, the per-shard occurrence
//!    walk whose local hits are remapped into the global trajectory-ID
//!    namespace.
//!
//! A monolithic index traces as a single shard; a [`ShardedCinct`]
//! produces one [`ShardTrace`] per shard, making short-circuiting
//! shards (backward search emptied early) directly visible.

use crate::shard::ShardedCinct;
use cinct_bwt::SYMBOL_OFFSET;
use cinct_fmindex::{Path, PathQuery};
use std::fmt::Write as _;
use std::ops::Range;
use std::time::{Duration, Instant};

/// One backward-search step: the range after consuming one more edge.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// The edge consumed by this step (`path[k-1]` at step `k`).
    pub edge: u32,
    /// Suffix range after this step; `None` = the range emptied here.
    pub range: Option<Range<usize>>,
    /// Time to narrow to this range (prefix re-query).
    pub elapsed: Duration,
}

/// The fan-out remap stage of a locate trace.
#[derive(Clone, Debug)]
pub struct LocateTrace {
    /// Occurrences this shard contributed (after remapping).
    pub occurrences: usize,
    /// Time for the shard-local occurrence walk.
    pub elapsed: Duration,
}

/// One shard's per-stage breakdown.
#[derive(Clone, Debug)]
pub struct ShardTrace {
    /// Shard number (0 for a monolithic index).
    pub shard: usize,
    /// Backward-search steps, in order; stops at the emptying step.
    pub steps: Vec<TraceStep>,
    /// `true` when the range emptied before the last edge was consumed —
    /// the remaining steps never ran in this shard.
    pub short_circuited: bool,
    /// `Some(edge)` when the shard was **pruned**: its edge-membership
    /// set ruled out `edge`, so no backward search ran here at all
    /// (steps is empty). The skipped search would have returned `None`.
    pub pruned: Option<u32>,
    /// The fan-out remap stage (locate traces on locate-capable indexes).
    pub locate: Option<LocateTrace>,
}

impl ShardTrace {
    /// The final suffix range (`None` when the path is absent here).
    pub fn final_range(&self) -> Option<Range<usize>> {
        self.steps.last().and_then(|s| s.range.clone())
    }

    /// Matches this shard contributes to the count.
    pub fn matches(&self) -> usize {
        self.final_range().map_or(0, |r| r.len())
    }

    /// Total backward-search time across the steps.
    pub fn search_time(&self) -> Duration {
        self.steps.iter().map(|s| s.elapsed).sum()
    }

    fn run(shard: usize, backend: &dyn PathQuery, path: &[u32], locate: bool) -> ShardTrace {
        let mut steps = Vec::with_capacity(path.len());
        let mut short_circuited = false;
        for k in 1..=path.len() {
            let t0 = Instant::now();
            let range = backend.range(Path::new(&path[..k]));
            let elapsed = t0.elapsed();
            let empty = range.is_none();
            steps.push(TraceStep {
                edge: path[k - 1],
                range,
                elapsed,
            });
            if empty {
                short_circuited = k < path.len();
                break;
            }
        }
        let locate = (locate && steps.last().is_some_and(|s| s.range.is_some()))
            .then(|| {
                let t0 = Instant::now();
                let occurrences = backend
                    .occurrences(Path::new(path))
                    .map(|it| it.count())
                    .ok()?;
                Some(LocateTrace {
                    occurrences,
                    elapsed: t0.elapsed(),
                })
            })
            .flatten();
        ShardTrace {
            shard,
            steps,
            short_circuited,
            pruned: None,
            locate,
        }
    }

    /// A trace entry for a shard the fan-out pruned: membership ruled
    /// out `edge`, so no search stage ran.
    fn pruned(shard: usize, edge: u32) -> ShardTrace {
        ShardTrace {
            shard,
            steps: Vec::new(),
            short_circuited: false,
            pruned: Some(edge),
            locate: None,
        }
    }
}

/// A complete explain-mode trace of one query. Build with
/// [`QueryTrace::monolithic`] or [`QueryTrace::sharded`]; render with
/// [`QueryTrace::render`].
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// The traced path (travel order).
    pub path: Vec<u32>,
    /// Time for pattern preprocessing (edge validation).
    pub preprocess: Duration,
    /// The first out-of-alphabet edge, if validation failed (no search
    /// stages run in that case).
    pub invalid_edge: Option<u32>,
    /// Per-shard breakdowns (one entry for a monolithic index).
    pub shards: Vec<ShardTrace>,
    /// Wall-clock for the whole trace.
    pub elapsed: Duration,
}

impl QueryTrace {
    /// Stage 1: validate the pattern against the backend's alphabet,
    /// timed. Returns the offending edge on failure.
    fn preprocess(backend: &dyn PathQuery, path: &[u32]) -> (Duration, Option<u32>) {
        let t0 = Instant::now();
        let n_edges = backend.sigma().saturating_sub(SYMBOL_OFFSET as usize);
        let bad = path.iter().find(|&&e| e as usize >= n_edges).copied();
        (t0.elapsed(), bad)
    }

    /// Trace `path` against a monolithic index (one shard entry). Set
    /// `locate` to include the occurrence-walk stage.
    pub fn monolithic(backend: &dyn PathQuery, path: &[u32], locate: bool) -> QueryTrace {
        let t0 = Instant::now();
        let (preprocess, invalid_edge) = Self::preprocess(backend, path);
        let shards = if invalid_edge.is_some() || path.is_empty() {
            Vec::new()
        } else {
            vec![ShardTrace::run(0, backend, path, locate)]
        };
        QueryTrace {
            path: path.to_vec(),
            preprocess,
            invalid_edge,
            shards,
            elapsed: t0.elapsed(),
        }
    }

    /// Trace `path` against every shard of a sharded corpus.
    pub fn sharded(index: &ShardedCinct, path: &[u32], locate: bool) -> QueryTrace {
        let t0 = Instant::now();
        let (preprocess, invalid_edge) = Self::preprocess(index, path);
        let shards = if invalid_edge.is_some() || path.is_empty() {
            Vec::new()
        } else {
            (0..index.num_shards())
                .map(|s| {
                    // Mirror the live fan-out's prune decision (resolved
                    // against the shard's membership set) so the trace
                    // shows exactly which shards a real query skips.
                    match index.pruned_edge(s, Path::new(path)) {
                        Some(edge) => ShardTrace::pruned(s, edge),
                        None => ShardTrace::run(s, index.shard_index(s), path, locate),
                    }
                })
                .collect()
        };
        QueryTrace {
            path: path.to_vec(),
            preprocess,
            invalid_edge,
            shards,
            elapsed: t0.elapsed(),
        }
    }

    /// Total matches across all shards.
    pub fn total_matches(&self) -> usize {
        self.shards.iter().map(ShardTrace::matches).sum()
    }

    /// Shards where the path was found.
    pub fn matched_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.matches() > 0).count()
    }

    /// Shards the fan-out pruned without running a search.
    pub fn pruned_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.pruned.is_some()).count()
    }

    /// Render the per-shard, per-stage breakdown for terminal output.
    pub fn render(&self) -> String {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: path {:?} ({} edge{})",
            self.path,
            self.path.len(),
            if self.path.len() == 1 { "" } else { "s" }
        );
        let _ = writeln!(
            out,
            "  preprocess: {:.2} us (edge validation)",
            us(self.preprocess)
        );
        if let Some(edge) = self.invalid_edge {
            let _ = writeln!(
                out,
                "  aborted: edge {edge} is outside the network alphabet"
            );
            return out;
        }
        for sh in &self.shards {
            let outcome = match sh.final_range() {
                Some(r) => format!("range {}..{} ({} matches)", r.start, r.end, r.len()),
                None if sh.pruned.is_some() => format!(
                    "pruned (edge {} absent from shard membership, search skipped)",
                    sh.pruned.unwrap()
                ),
                None if sh.short_circuited => format!(
                    "absent (short-circuited after {} of {} steps)",
                    sh.steps.len(),
                    self.path.len()
                ),
                None => "absent".to_string(),
            };
            let _ = writeln!(
                out,
                "  shard {}: {} | search {:.2} us",
                sh.shard,
                outcome,
                us(sh.search_time())
            );
            for (k, step) in sh.steps.iter().enumerate() {
                let narrowed = match &step.range {
                    Some(r) => format!("{}..{} ({} rows)", r.start, r.end, r.len()),
                    None => "empty".to_string(),
                };
                let _ = writeln!(
                    out,
                    "    step {}: edge {} -> {} [{:.2} us]",
                    k + 1,
                    step.edge,
                    narrowed,
                    us(step.elapsed)
                );
            }
            if let Some(loc) = &sh.locate {
                let _ = writeln!(
                    out,
                    "    fan-out remap: {} occurrence{} in {:.2} us",
                    loc.occurrences,
                    if loc.occurrences == 1 { "" } else { "s" },
                    us(loc.elapsed)
                );
            }
        }
        let pruned = self.pruned_shards();
        let pruned_note = if pruned > 0 {
            format!(" ({pruned} pruned)")
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  total: {} matches in {}/{} shards{}, {:.2} us traced",
            self.total_matches(),
            self.matched_shards(),
            self.shards.len(),
            pruned_note,
            us(self.elapsed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CinctBuilder;
    use crate::shard::ShardedBuilder;

    fn paper_trajs() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
    }

    #[test]
    fn monolithic_trace_ranges_match_direct_queries() {
        let idx = CinctBuilder::new()
            .locate_sampling(2)
            .build(&paper_trajs(), 6);
        let path = [0u32, 1, 2];
        let tr = QueryTrace::monolithic(&idx, &path, true);
        assert_eq!(tr.shards.len(), 1);
        let sh = &tr.shards[0];
        // Every intermediate range equals the prefix's direct range.
        assert_eq!(sh.steps.len(), 3);
        for (k, step) in sh.steps.iter().enumerate() {
            assert_eq!(step.range, idx.range(Path::new(&path[..=k])));
        }
        assert_eq!(tr.total_matches(), idx.count(Path::new(&path)));
        let loc = sh.locate.as_ref().expect("locate-capable index");
        assert_eq!(loc.occurrences, 1);
        assert!(tr.render().contains("step 3: edge 2"));
    }

    #[test]
    fn short_circuit_is_reported() {
        let idx = CinctBuilder::new().build(&paper_trajs(), 6);
        // Edge 3 only follows 0; [1, 3] empties at step 2 of 3.
        let tr = QueryTrace::monolithic(&idx, &[1, 3, 0], false);
        let sh = &tr.shards[0];
        assert!(sh.short_circuited);
        assert_eq!(sh.steps.len(), 2);
        assert_eq!(sh.matches(), 0);
        assert!(tr.render().contains("short-circuited after 2 of 3 steps"));
    }

    #[test]
    fn invalid_edge_aborts_before_search() {
        let idx = CinctBuilder::new().build(&paper_trajs(), 6);
        let tr = QueryTrace::monolithic(&idx, &[0, 99], false);
        assert_eq!(tr.invalid_edge, Some(99));
        assert!(tr.shards.is_empty());
        assert!(tr.render().contains("edge 99 is outside"));
    }

    #[test]
    fn pruned_shards_are_traced_without_search_stages() {
        use crate::shard::ShardPartition;
        // Round-robin over the paper corpus: edge 3 lives only in shard
        // 1 ([0,1,2],[0,3]); shard 0 ([0,1,4,5],[1,2]) is pruned.
        let sharded = ShardedBuilder::new()
            .shards(2)
            .partition(ShardPartition::RoundRobin)
            .build(&paper_trajs(), 6);
        let tr = QueryTrace::sharded(&sharded, &[0, 3], false);
        assert_eq!(tr.pruned_shards(), 1);
        let pruned = &tr.shards[0];
        assert_eq!(pruned.pruned, Some(3));
        assert!(pruned.steps.is_empty());
        assert_eq!(pruned.matches(), 0);
        assert_eq!(tr.total_matches(), 1);
        let rendered = tr.render();
        assert!(
            rendered.contains("shard 0: pruned (edge 3 absent"),
            "{rendered}"
        );
        assert!(rendered.contains("(1 pruned)"), "{rendered}");
        // Disabling pruning removes the skip from the trace too.
        let mut unpruned = sharded.clone();
        unpruned.set_pruning(false);
        let tr = QueryTrace::sharded(&unpruned, &[0, 3], false);
        assert_eq!(tr.pruned_shards(), 0);
        assert_eq!(tr.total_matches(), 1);
    }

    #[test]
    fn sharded_trace_breaks_down_per_shard() {
        let sharded = ShardedBuilder::new()
            .shards(2)
            .locate_sampling(2)
            .build(&paper_trajs(), 6);
        let path = [1u32, 2];
        let tr = QueryTrace::sharded(&sharded, &path, true);
        assert_eq!(tr.shards.len(), 2);
        assert_eq!(tr.total_matches(), sharded.count(Path::new(&path)));
        let occ_total: usize = tr
            .shards
            .iter()
            .filter_map(|s| s.locate.as_ref())
            .map(|l| l.occurrences)
            .sum();
        assert_eq!(occ_total, 2);
        let rendered = tr.render();
        assert!(rendered.contains("shard 0:"));
        assert!(rendered.contains("shard 1:"));
        assert!(rendered.contains("2 matches in"));
    }
}
