//! The empirical transition graph (ET-graph, paper Definition 3).
//!
//! `G_T` has one vertex per alphabet symbol of the trajectory string
//! (including the sentinels `#` and `$`) and a directed edge `(w′, w)` iff
//! the bigram `w w′` occurs in `T` — i.e. iff a transition `w′ → w` is ever
//! observed in the (reversed-trajectory) string. For NCT data `G_T` is as
//! sparse as the road network itself, which is the property RML exploits.
//!
//! Stored as CSR adjacency with, per edge: the target symbol (packed at
//! `⌈lg σ⌉` bits), the RML label (implicitly, by in-list position) and the
//! PseudoRank correction term `Z_{w′w}` (packed at the width of the largest
//! term, attached by `builder.rs`). Bigram counts are construction-time
//! scaffolding and are not part of the queryable structure.

use cinct_succinct::serial::Persist;
use cinct_succinct::{IntVec, SpaceUsage};
use std::collections::HashMap;

/// CSR representation of the ET-graph, with per-edge payloads.
#[derive(Clone, Debug)]
pub struct EtGraph {
    /// Per-vertex offsets into the edge arrays (length σ+1).
    offsets: Vec<u32>,
    /// Out-neighbours of each vertex, packed; the edge at in-list position
    /// `k` has RML label `k+1`.
    targets: IntVec,
    /// Bigram count per edge (construction-time only; excluded from size).
    counts: Vec<u64>,
    /// PseudoRank correction terms per edge, packed. Empty until the index
    /// builder attaches them.
    z_terms: IntVec,
}

impl EtGraph {
    /// Count bigrams of `text` (over alphabet `0..sigma`) and build the
    /// graph. Edge lists are initially ordered by **descending bigram
    /// count** (ties by symbol id) — the paper's optimal labeling strategy.
    /// `text` follows Definition 3: edge `(w′, w)` for every substring
    /// `w w′`.
    pub fn from_text(text: &[u32], sigma: usize) -> Self {
        let mut bigrams: HashMap<(u32, u32), u64> = HashMap::new();
        for pair in text.windows(2) {
            let (w, w_prime) = (pair[0], pair[1]);
            *bigrams.entry((w_prime, w)).or_insert(0) += 1;
        }
        // The BWT is defined over *rotations* (paper Fig. 2), so the labeled
        // BWT also needs the cyclic transition from the final sentinel back
        // to the first symbol: T_bwt labels `#` in the context of `T[0]`.
        if text.len() >= 2 {
            let (w, w_prime) = (text[text.len() - 1], text[0]);
            *bigrams.entry((w_prime, w)).or_insert(0) += 1;
        }
        Self::from_bigrams(bigrams.into_iter(), sigma)
    }

    /// Build from explicit `((w′, w), count)` pairs.
    pub fn from_bigrams(bigrams: impl Iterator<Item = ((u32, u32), u64)>, sigma: usize) -> Self {
        let mut per_vertex: Vec<Vec<(u32, u64)>> = vec![Vec::new(); sigma];
        let mut n_edges = 0usize;
        for ((w_prime, w), c) in bigrams {
            debug_assert!((w_prime as usize) < sigma && (w as usize) < sigma);
            per_vertex[w_prime as usize].push((w, c));
            n_edges += 1;
        }
        let mut offsets = Vec::with_capacity(sigma + 1);
        let width = IntVec::width_for(sigma.max(2) as u64 - 1);
        let mut targets = IntVec::with_capacity(width, n_edges);
        let mut counts = Vec::with_capacity(n_edges);
        offsets.push(0u32);
        for adj in per_vertex.iter_mut() {
            adj.sort_by_key(|&(w, c)| (std::cmp::Reverse(c), w));
            for &(w, c) in adj.iter() {
                targets.push(w as u64);
                counts.push(c);
            }
            offsets.push(targets.len() as u32);
        }
        Self {
            offsets,
            targets,
            counts,
            z_terms: IntVec::new(1),
        }
    }

    /// Number of vertices (= σ).
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges `|E_T|`.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbour list of `w′` as a fresh `Vec` (targets in label order:
    /// position `k` has label `k+1`). For diagnostics and tests; hot paths
    /// use [`EtGraph::label`] / [`EtGraph::decode`] directly.
    pub fn out(&self, w_prime: u32) -> Vec<u32> {
        let lo = self.offsets[w_prime as usize] as usize;
        let hi = self.offsets[w_prime as usize + 1] as usize;
        (lo..hi).map(|k| self.targets.get(k) as u32).collect()
    }

    /// Out-degree of `w′`.
    #[inline]
    pub fn out_degree(&self, w_prime: u32) -> usize {
        (self.offsets[w_prime as usize + 1] - self.offsets[w_prime as usize]) as usize
    }

    /// The RML label `φ(w|w′)` (1-based), or `None` if the transition never
    /// occurs. Linear scan over the tiny out-list — the paper's O(δ) lookup
    /// (§III-C3).
    #[inline]
    pub fn label(&self, w: u32, w_prime: u32) -> Option<u32> {
        let lo = self.offsets[w_prime as usize] as usize;
        let hi = self.offsets[w_prime as usize + 1] as usize;
        (lo..hi)
            .position(|k| self.targets.get(k) as u32 == w)
            .map(|p| p as u32 + 1)
    }

    /// `(φ(w|w′), Z_{w′w})` in one adjacency-row scan — every backward
    /// search step needs both, and [`EtGraph::label`] + [`EtGraph::z_term`]
    /// would recompute the same CSR row base twice.
    #[inline]
    pub fn label_and_z(&self, w: u32, w_prime: u32) -> Option<(u32, i64)> {
        let lo = self.offsets[w_prime as usize] as usize;
        let hi = self.offsets[w_prime as usize + 1] as usize;
        for k in lo..hi {
            if self.targets.get(k) as u32 == w {
                let z = if self.z_terms.is_empty() {
                    0
                } else {
                    let enc = self.z_terms.get(k);
                    ((enc >> 1) as i64) ^ -((enc & 1) as i64)
                };
                return Some(((k - lo) as u32 + 1, z));
            }
        }
        None
    }

    /// Decode: the symbol `w` with `φ(w|w′) = label`. Inverse of
    /// [`EtGraph::label`].
    #[inline]
    pub fn decode(&self, label: u32, w_prime: u32) -> u32 {
        let lo = self.offsets[w_prime as usize] as usize;
        self.targets.get(lo + (label - 1) as usize) as u32
    }

    /// The correction term `Z_{w′w}` stored on edge `(w′, w)` identified by
    /// its label. `Z` may be negative (Eq. (7) subtracts two unrelated
    /// ranks); it is stored zigzag-encoded. Zero until the index builder
    /// attaches the computed terms.
    #[inline]
    pub fn z_term(&self, label: u32, w_prime: u32) -> i64 {
        if self.z_terms.is_empty() {
            return 0;
        }
        let lo = self.offsets[w_prime as usize] as usize;
        let enc = self.z_terms.get(lo + (label - 1) as usize);
        // Zigzag decode.
        ((enc >> 1) as i64) ^ -((enc & 1) as i64)
    }

    /// Attach all correction terms at once (edge-slot order = CSR order).
    /// Builder-only; zigzag-encodes and packs at the width of the largest.
    pub(crate) fn attach_z_terms(&mut self, zs: &[i64]) {
        debug_assert_eq!(zs.len(), self.num_edges());
        let encoded: Vec<u64> = zs.iter().map(|&z| ((z << 1) ^ (z >> 63)) as u64).collect();
        self.z_terms = IntVec::from_slice(&encoded);
    }

    /// Bigram count of edge `(w′, w)` at `label`.
    #[inline]
    pub fn bigram_count(&self, label: u32, w_prime: u32) -> u64 {
        let lo = self.offsets[w_prime as usize] as usize;
        self.counts[lo + (label - 1) as usize]
    }

    /// Maximum out-degree δ (drives the Theorem 5 bound `O(|P|·δb)`).
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.out_degree(v as u32))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree d̄ over vertices with at least one out-edge
    /// (Table III's d̄ column).
    pub fn avg_out_degree(&self) -> f64 {
        let live = (0..self.num_vertices())
            .filter(|&v| self.out_degree(v as u32) > 0)
            .count();
        if live == 0 {
            0.0
        } else {
            self.num_edges() as f64 / live as f64
        }
    }

    /// Reorder the out-list of every vertex with the supplied permutation
    /// function (used by the random-labeling ablation, Fig. 14). The
    /// permutation receives the current list and must return a permutation
    /// of in-list indices. Construction-time only (rebuilds the packed
    /// target array).
    pub(crate) fn permute_labels(&mut self, mut perm: impl FnMut(u32, &[u32]) -> Vec<usize>) {
        let mut new_targets = IntVec::with_capacity(self.targets.width(), self.targets.len());
        for v in 0..self.num_vertices() as u32 {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            let t_old: Vec<u32> = (lo..hi).map(|k| self.targets.get(k) as u32).collect();
            if t_old.len() <= 1 {
                for &t in &t_old {
                    new_targets.push(t as u64);
                }
                continue;
            }
            let p = perm(v, &t_old);
            debug_assert_eq!(p.len(), t_old.len());
            let c_old = self.counts[lo..hi].to_vec();
            for (k, &src) in p.iter().enumerate() {
                new_targets.push(t_old[src] as u64);
                self.counts[lo + k] = c_old[src];
            }
        }
        self.targets = new_targets;
    }
}

impl Persist for EtGraph {
    fn persist(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        self.offsets.persist(w)?;
        self.targets.persist(w)?;
        self.counts.persist(w)?;
        self.z_terms.persist(w)
    }

    fn restore(r: &mut dyn std::io::Read) -> std::io::Result<Self> {
        let offsets: Vec<u32> = Persist::restore(r)?;
        let targets = IntVec::restore(r)?;
        let counts: Vec<u64> = Persist::restore(r)?;
        let z_terms = IntVec::restore(r)?;
        if offsets.is_empty()
            || counts.len() != targets.len()
            || *offsets.last().unwrap() as usize != targets.len()
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "ET-graph tables disagree",
            ));
        }
        Ok(Self {
            offsets,
            targets,
            counts,
            z_terms,
        })
    }
}

impl SpaceUsage for EtGraph {
    /// The on-query footprint of the ET-graph: offsets + packed targets +
    /// packed Z terms. (Bigram counts are construction-time only, matching
    /// the paper's accounting of "CiNCT" vs "CiNCT (w/o ET-graph)".)
    fn size_in_bytes(&self) -> usize {
        self.offsets.capacity() * 4 + self.targets.size_in_bytes() + self.z_terms.size_in_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct_bwt::TrajectoryString;

    /// Paper Fig. 1 / Fig. 6(a) example.
    fn paper_graph() -> EtGraph {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let ts = TrajectoryString::build(&trajs, 6);
        EtGraph::from_text(ts.text(), ts.sigma())
    }

    // Symbol helpers for the paper's alphabet.
    fn sym(c: char) -> u32 {
        match c {
            '#' => 0,
            '$' => 1,
            c => (c as u32 - 'A' as u32) + 2,
        }
    }

    #[test]
    fn paper_labels_fig6a() {
        let g = paper_graph();
        // Fig. 6(a): φ(B|A)=1 (n_BA=2), φ(D|A)=2 (n_DA=1).
        assert_eq!(g.label(sym('B'), sym('A')), Some(1));
        assert_eq!(g.label(sym('D'), sym('A')), Some(2));
        // From B the next symbol in T can be C ("CB" occurs twice) or E
        // ("EB" once): φ(C|B)=1, φ(E|B)=2.
        assert_eq!(g.label(sym('C'), sym('B')), Some(1));
        assert_eq!(g.label(sym('E'), sym('B')), Some(2));
        // A has no edge to C.
        assert_eq!(g.label(sym('C'), sym('A')), None);
    }

    #[test]
    fn decode_inverts_label() {
        let g = paper_graph();
        for w_prime in 0..g.num_vertices() as u32 {
            for (k, &w) in g.out(w_prime).iter().enumerate() {
                let label = k as u32 + 1;
                assert_eq!(g.label(w, w_prime), Some(label));
                assert_eq!(g.decode(label, w_prime), w);
            }
        }
    }

    #[test]
    fn bigram_counts_descend() {
        let g = paper_graph();
        for v in 0..g.num_vertices() as u32 {
            let d = g.out_degree(v);
            for k in 1..d as u32 {
                assert!(
                    g.bigram_count(k, v) >= g.bigram_count(k + 1, v),
                    "labels of {v} not frequency-sorted"
                );
            }
        }
    }

    #[test]
    fn sentinel_edges_exist() {
        let g = paper_graph();
        // '$' precedes the first symbols of (reversed) trajectories: e.g.
        // substring "A$" occurs, so edge ($, A) exists.
        assert!(g.label(sym('A'), sym('$')).is_some());
        // '#' follows the last '$': substring "$#" → edge (#, $).
        assert!(g.label(sym('$'), sym('#')).is_some());
        // The cyclic rotation edge (F, #) exists for BWT labeling.
        assert!(g.label(sym('#'), sym('F')).is_some());
    }

    #[test]
    fn degrees() {
        let g = paper_graph();
        assert_eq!(g.out_degree(sym('A')), 2); // → B, D
        assert!(g.max_out_degree() >= 2);
        assert!(g.avg_out_degree() > 1.0);
    }

    #[test]
    fn permute_labels_swaps() {
        let mut g = paper_graph();
        let before_1 = g.decode(1, sym('A'));
        let before_2 = g.decode(2, sym('A'));
        g.permute_labels(|_, list| (0..list.len()).rev().collect());
        assert_eq!(g.decode(1, sym('A')), before_2);
        assert_eq!(g.decode(2, sym('A')), before_1);
    }

    #[test]
    fn z_terms_roundtrip() {
        let mut g = paper_graph();
        // Mix of positive and negative terms (Eq. (7) can produce both).
        let zs: Vec<i64> = (0..g.num_edges() as i64).map(|i| (i - 3) * 5).collect();
        g.attach_z_terms(&zs);
        let mut slot = 0usize;
        for v in 0..g.num_vertices() as u32 {
            for k in 0..g.out_degree(v) {
                assert_eq!(g.z_term(k as u32 + 1, v), zs[slot]);
                slot += 1;
            }
        }
    }

    #[test]
    fn packing_is_compact() {
        let g = paper_graph();
        // σ = 8 → 3-bit targets; far below 4 bytes/edge.
        assert!(g.size_in_bytes() < g.num_edges() * 4 + (g.num_vertices() + 1) * 4 + 64);
    }

    #[test]
    fn empty_text_edge_cases() {
        let g = EtGraph::from_text(&[0], 1);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_out_degree(), 0.0);
    }
}
