//! Dataset statistics — the columns of the paper's Table III.

use crate::rml::{LabelingStrategy, Rml};
use cinct_bwt::{bwt, entropy_h0, entropy_hk, CArray, TrajectoryString};

/// One row of Table III: `|T|`, `lg σ`, `H0(T)`, `H0(φ(T_bwt))`, `H1(T)`,
/// and the ET-graph average out-degree d̄.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Dataset label.
    pub name: String,
    /// `|T|`: trajectory-string length, including separators.
    pub text_len: usize,
    /// `lg σ`.
    pub log2_sigma: f64,
    /// `H0(T)` (= `H0(T_bwt)`, since the BWT is a permutation).
    pub h0: f64,
    /// `H0(φ(T_bwt))` under bigram-sorted RML.
    pub h0_labeled: f64,
    /// `H1(T)`.
    pub h1: f64,
    /// ET-graph average out-degree d̄.
    pub avg_out_degree: f64,
    /// ET-graph maximum out-degree δ.
    pub max_out_degree: usize,
    /// Number of trajectories.
    pub num_trajectories: usize,
}

impl DatasetStats {
    /// Compute every column from raw trajectories.
    pub fn compute(name: &str, trajectories: &[Vec<u32>], n_edges: usize) -> Self {
        let ts = TrajectoryString::build(trajectories, n_edges);
        Self::compute_from_string(name, &ts)
    }

    /// Compute from a prepared trajectory string.
    pub fn compute_from_string(name: &str, ts: &TrajectoryString) -> Self {
        let text = ts.text();
        let sigma = ts.sigma();
        let (_, tbwt) = bwt::bwt(text, sigma);
        let c = CArray::new(text, sigma);
        let rml = Rml::from_text(text, sigma, LabelingStrategy::BigramSorted);
        let labeled = rml.label_bwt(&tbwt, &c);
        Self {
            name: name.to_string(),
            text_len: text.len(),
            log2_sigma: (sigma as f64).log2(),
            h0: entropy_h0(text),
            h0_labeled: entropy_h0(&labeled),
            h1: entropy_hk(text, 1),
            avg_out_degree: rml.graph().avg_out_degree(),
            max_out_degree: rml.graph().max_out_degree(),
            num_trajectories: ts.num_trajectories(),
        }
    }

    /// Render as a Table III-style row.
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:>10} {:>6.1} {:>7.2} {:>7.2} {:>7.2} {:>6.1}",
            self.name,
            self.text_len,
            self.log2_sigma,
            self.h0,
            self.h0_labeled,
            self.h1,
            self.avg_out_degree
        )
    }

    /// The Table III header matching [`DatasetStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>10} {:>6} {:>7} {:>7} {:>7} {:>6}",
            "Dataset", "|T|", "lg(s)", "H0(T)", "H0(phi)", "H1(T)", "d_bar"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_stats() {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let s = DatasetStats::compute("example", &trajs, 6);
        assert_eq!(s.text_len, 16);
        assert_eq!(s.num_trajectories, 4);
        assert!((s.log2_sigma - 3.0).abs() < 1e-12); // σ = 8
        assert!((s.h0_labeled - 0.7).abs() < 0.05);
        // RML entropy is far below the raw entropy (paper Eq. (10)).
        assert!(s.h0_labeled < s.h0 / 2.0);
        assert!(s.max_out_degree >= 2);
    }

    #[test]
    fn h1_not_above_h0() {
        let trajs: Vec<Vec<u32>> = (0..20)
            .map(|k| (0..30).map(|i| ((i * 7 + k) % 40) as u32).collect())
            .collect();
        let s = DatasetStats::compute("synthetic", &trajs, 40);
        assert!(s.h1 <= s.h0 + 1e-9);
    }

    #[test]
    fn row_formatting() {
        let trajs = vec![vec![0, 1], vec![1, 0]];
        let s = DatasetStats::compute("fmt", &trajs, 2);
        let row = s.table_row();
        assert!(row.starts_with("fmt"));
        assert_eq!(
            DatasetStats::table_header().split_whitespace().count(),
            row.split_whitespace().count()
        );
    }
}
