//! Durable multi-file persistence for [`ShardedCinct`]: a versioned,
//! checksummed shard manifest plus one [`CinctIndex`] file per shard.
//!
//! # On-disk layout
//!
//! A sharded index is a **directory**:
//!
//! ```text
//! corpus.cinct/
//!   manifest.cinct     versioned header + per-shard directory + checksum
//!   shard-00000.cinct  CinctIndex (the single-file format of write_to)
//!   shard-00001.cinct
//!   ...
//! ```
//!
//! The manifest records the network size, the construction configuration
//! (so [`ShardedCinct::append_batch`] after reopening builds new shards
//! identically), and per shard: its trajectory count, the FNV-1a checksum
//! of its file, its global-ID column, and (format v3) its **pruning
//! block** — the edge-membership structure and owned global-ID span the
//! fan-out skips shards with (see [`crate::prune`]). The manifest itself
//! ends with an FNV-1a checksum over everything before it, so truncation
//! or bit rot anywhere in the file — pruning blocks included — is caught
//! before any field is trusted. Version 2 manifests (pre-pruning) still
//! open: the metadata is re-derived, exactly, from each shard's `C`
//! array.
//!
//! # Failure taxonomy (no panics)
//!
//! * wrong magic / unsupported version / checksum mismatch (manifest or
//!   shard file) / inconsistent global-ID namespace →
//!   [`QueryError::CorruptIndex`];
//! * missing or unreadable files, truncated streams → [`QueryError::Io`]
//!   (with the offending path in the message).

use crate::builder::CinctBuilder;
use crate::faultio;
use crate::index::CinctIndex;
use crate::rml::LabelingStrategy;
use crate::shard::{QuarantinedShard, Shard, ShardPartition, ShardedBuilder, ShardedCinct};
use cinct_fmindex::QueryError;
use cinct_succinct::serial::{read_u64, read_usize, write_u64, write_usize, Persist};
use std::io::Cursor;
use std::path::Path as FsPath;

/// Manifest magic prefix ("CINCTS" as bytes, low 16 bits = format version).
const MANIFEST_PREFIX: u64 = 0x4349_4e43_5453_0000;
/// Current manifest format version (3 = per-shard pruning blocks: edge
/// membership + owned global-ID span, appended to each shard's directory
/// entry; 2 added the absorbed-WAL-position stamp).
const MANIFEST_VERSION: u64 = 3;
/// Oldest manifest version this build still opens. A v2 manifest (no
/// pruning blocks) loads cleanly — pruning metadata is re-derived from
/// each shard's own `C` array, which is exact and O(σ).
const MANIFEST_MIN_VERSION: u64 = 2;
/// The manifest file inside a sharded-index directory.
pub const MANIFEST_FILE: &str = "manifest.cinct";
/// Snapshot-stream magic prefix ("CINCSN" as bytes, low 16 bits = version).
const SNAPSHOT_PREFIX: u64 = 0x4349_4e43_534e_0000;
/// Current snapshot-stream format version.
const SNAPSHOT_VERSION: u64 = 1;

/// File name of shard `s` inside the directory. **Content-addressed**:
/// the name embeds the file's own checksum, so a re-save (after
/// `append_batch`/`compact`) never overwrites a file the current
/// manifest still references — crash-safety depends on this (see
/// [`ShardedCinct::save_dir`]).
pub fn shard_file_name(s: usize, checksum: u64) -> String {
    format!("shard-{s:05}-{checksum:016x}.cinct")
}

/// How hard the store pushes bytes toward the platter.
///
/// [`Durability::Durable`] (the default everywhere) fsyncs each file
/// before its commit rename and fsyncs the parent directory after, so a
/// completed [`ShardedCinct::save_dir`] survives not just a process crash
/// but a machine crash. [`Durability::Fast`] skips every fsync — the
/// temp-file + rename discipline still protects against *process* death,
/// but a power cut can lose the whole save. Benches opt into `Fast` to
/// measure compute without storage-stack noise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// fsync files and the parent directory around the commit rename.
    #[default]
    Durable,
    /// No fsync: page-cache durability only (benches, scratch corpora).
    Fast,
}

/// Write `bytes` to `path` atomically: through a `.tmp` sibling +
/// rename, so readers never observe a half-written file. Under
/// [`Durability::Durable`] the sibling is fsynced before the rename (the
/// rename must not beat its data to disk) and the parent directory after
/// (the rename itself must survive power loss).
fn write_atomic(path: &FsPath, bytes: &[u8], durability: Durability) -> Result<(), QueryError> {
    let tmp = path.with_extension("tmp");
    faultio::write_file(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    if durability == Durability::Durable {
        faultio::sync_path(&tmp).map_err(|e| fsync_err(&tmp, e))?;
    }
    faultio::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if durability == Durability::Durable {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        let parent = parent.unwrap_or(FsPath::new("."));
        faultio::sync_path(parent).map_err(|e| fsync_err(parent, e))?;
    }
    Ok(())
}

/// An fsync failure leaves durability unknown — surface it as an error
/// (callers must not ack) and count it, because a recurring fsync failure
/// is a dying disk.
pub(crate) fn fsync_err(path: &FsPath, e: std::io::Error) -> QueryError {
    crate::metrics::store().fsync_fail.inc();
    QueryError::Io(format!("fsync {}: {e}", path.display()))
}

/// FNV-1a 64-bit — the store's integrity checksum. Not cryptographic;
/// it guards against truncation, bit rot, and mixed-up files, which is
/// the failure model for a local index directory.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn io_err(path: &FsPath, e: std::io::Error) -> QueryError {
    QueryError::Io(format!("{}: {:?}: {e}", path.display(), e.kind()))
}

fn corrupt(msg: impl Into<String>) -> QueryError {
    QueryError::CorruptIndex(msg.into())
}

/// Serialize the labeling strategy as `(tag, seed)`.
fn labeling_to_raw(l: LabelingStrategy) -> (u64, u64) {
    match l {
        LabelingStrategy::BigramSorted => (0, 0),
        LabelingStrategy::Random { seed } => (1, seed),
    }
}

fn labeling_from_raw(tag: u64, seed: u64) -> Result<LabelingStrategy, QueryError> {
    match tag {
        0 => Ok(LabelingStrategy::BigramSorted),
        1 => Ok(LabelingStrategy::Random { seed }),
        t => Err(corrupt(format!("unknown labeling strategy tag {t}"))),
    }
}

fn partition_to_raw(p: ShardPartition) -> u64 {
    match p {
        ShardPartition::RoundRobin => 0,
        ShardPartition::SizeBalanced => 1,
    }
}

fn partition_from_raw(tag: u64) -> Result<ShardPartition, QueryError> {
    match tag {
        0 => Ok(ShardPartition::RoundRobin),
        1 => Ok(ShardPartition::SizeBalanced),
        t => Err(corrupt(format!("unknown partition strategy tag {t}"))),
    }
}

/// How [`ShardedCinct::open_dir_with`] reacts to a damaged shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpenMode {
    /// Any structural failure anywhere fails the whole open — the
    /// default, and the right answer for pipelines that would rather
    /// stop than silently serve a partial corpus.
    #[default]
    Strict,
    /// Quarantine shards that fail their checksum / parse / namespace
    /// checks and serve the rest. The result reports the damage through
    /// [`ShardedCinct::quarantined`] and refuses `save_dir`/`compact`
    /// (which would launder the loss into a "clean" corpus). Manifest
    /// damage is still fatal — without it nothing can be trusted.
    Resilient,
}

impl ShardedCinct {
    /// Persist the sharded index into directory `dir` (created if
    /// missing): one file per shard plus the checksummed manifest.
    /// Durable ([`Durability::Durable`]): every file is fsynced and the
    /// directory fsynced after the manifest rename — see
    /// [`ShardedCinct::save_dir_with`] for the benchmark escape hatch.
    ///
    /// **Crash-safe by construction**: shard files are content-addressed
    /// ([`shard_file_name`] embeds the checksum), so a save never
    /// overwrites a file the live manifest references — unchanged shards
    /// are not even rewritten (an `append_batch` + save touches only the
    /// new shard). Every file lands via temp-file + rename, and the
    /// manifest is renamed **last**: a crash at any point leaves the old
    /// manifest describing the old (untouched) files — a fully
    /// consistent old index — plus possibly some unreferenced new files,
    /// which the next successful save garbage-collects.
    pub fn save_dir(&self, dir: impl AsRef<FsPath>) -> Result<(), QueryError> {
        self.save_dir_with(dir, Durability::Durable)
    }

    /// [`ShardedCinct::save_dir`] with an explicit [`Durability`] choice.
    ///
    /// Refuses to save a **degraded** corpus (one opened resiliently with
    /// quarantined shards): the manifest written here would describe only
    /// the surviving shards, quietly turning quarantine into deletion.
    /// Recover the damaged files (or accept the loss by rebuilding from
    /// extracted trajectories) instead.
    pub fn save_dir_with(
        &self,
        dir: impl AsRef<FsPath>,
        durability: Durability,
    ) -> Result<(), QueryError> {
        self.save_dir_at(dir, durability, 0)
    }

    /// [`ShardedCinct::save_dir_with`] that also stamps `wal_position`
    /// into the manifest: the WAL sequence number this save absorbs
    /// (every journaled record below it is folded into the manifest).
    /// `Wal::open` reads the stamp back and skips replaying absorbed
    /// records — without it, a crash *between* the manifest rename and
    /// the WAL retire would replay records the manifest already holds,
    /// applying them twice. Callers without a WAL pass 0 (nothing is
    /// absorbed, nothing is filtered).
    pub fn save_dir_at(
        &self,
        dir: impl AsRef<FsPath>,
        durability: Durability,
        wal_position: u64,
    ) -> Result<(), QueryError> {
        let _span = cinct_obs::Span::enter(&crate::metrics::store().save_ns);
        if self.is_degraded() {
            return Err(QueryError::InvalidInput(format!(
                "refusing to save a degraded corpus ({} quarantined shard(s) would be dropped)",
                self.quarantined().len()
            )));
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        // Shard files first, collecting names + checksums for the manifest.
        let shards = self.serialize_shards()?;
        for (name, bytes, _) in &shards {
            let path = dir.join(name);
            // The name *is* the content hash: an existing file with this
            // name already holds these bytes (open_dir re-verifies).
            if !path.exists() {
                write_atomic(&path, bytes, durability)?;
            }
        }
        let m = self.manifest_bytes(&shards, wal_position)?;
        write_atomic(&dir.join(MANIFEST_FILE), &m, durability)?;
        // The new manifest is live — garbage-collect shard files it does
        // not reference (previous generations, stray temp files). Best
        // effort: a leftover file is harmless, only disk overhead.
        if let Ok(rd) = std::fs::read_dir(dir) {
            for entry in rd.flatten() {
                let fname = entry.file_name();
                let fname = fname.to_string_lossy();
                let stale_shard = fname.starts_with("shard-")
                    && fname.ends_with(".cinct")
                    && !shards.iter().any(|(n, _, _)| n == &*fname);
                if stale_shard || fname.ends_with(".tmp") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Serialize every shard, returning `(file name, bytes, checksum)`
    /// per shard — the common front half of [`ShardedCinct::save_dir`]
    /// and [`ShardedCinct::snapshot_to_vec`].
    fn serialize_shards(&self) -> Result<Vec<(String, Vec<u8>, u64)>, QueryError> {
        let mut out = Vec::with_capacity(self.num_shards());
        for s in 0..self.num_shards() {
            let mut bytes = Vec::new();
            self.shard_index(s)
                .write_to(&mut bytes)
                .map_err(|e| QueryError::Io(format!("serialize shard {s}: {e}")))?;
            let checksum = fnv64(&bytes);
            out.push((shard_file_name(s, checksum), bytes, checksum));
        }
        Ok(out)
    }

    /// Build the manifest byte stream (header, absorbed WAL position,
    /// config, per-shard directory, trailing self-checksum) over the
    /// serialized shards. `wal_position` sits at a fixed offset right
    /// after the magic word so [`manifest_wal_position`] can read it
    /// without parsing the whole directory.
    fn manifest_bytes(
        &self,
        shards: &[(String, Vec<u8>, u64)],
        wal_position: u64,
    ) -> Result<Vec<u8>, QueryError> {
        self.manifest_bytes_at(shards, wal_position, MANIFEST_VERSION)
    }

    /// [`ShardedCinct::manifest_bytes`] at an explicit format version —
    /// the downgrade path (and the compat tests' v2 writer): version 2
    /// omits the per-shard pruning blocks, which a v3-aware open
    /// re-derives from the shard indexes.
    fn manifest_bytes_at(
        &self,
        shards: &[(String, Vec<u8>, u64)],
        wal_position: u64,
        version: u64,
    ) -> Result<Vec<u8>, QueryError> {
        assert!(
            (MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version),
            "unwritable manifest version {version}"
        );
        let mut m: Vec<u8> = Vec::new();
        let w = &mut m as &mut dyn std::io::Write;
        write_u64(w, MANIFEST_PREFIX | version)?;
        write_u64(w, wal_position)?;
        write_usize(w, self.network_edges())?;
        let b = self.config().index_builder_config();
        write_usize(w, b.configured_block_size())?;
        write_usize(w, b.configured_locate_sampling().unwrap_or(0))?;
        let (ltag, lseed) = labeling_to_raw(b.configured_labeling());
        write_u64(w, ltag)?;
        write_u64(w, lseed)?;
        write_u64(w, partition_to_raw(self.config().configured_partition()))?;
        write_usize(w, self.config().configured_threads())?;
        write_usize(w, self.num_trajectories())?;
        write_usize(w, self.num_shards())?;
        for (s, (name, _, checksum)) in shards.iter().enumerate() {
            name.as_bytes().to_vec().persist(w)?;
            write_usize(w, self.shard_index(s).num_trajectories())?;
            write_u64(w, *checksum)?;
            self.shard_globals(s).to_vec().persist(w)?;
            if version >= 3 {
                self.shard_pruning(s).persist(w)?;
            }
        }
        let digest = fnv64(&m);
        write_u64(&mut m, digest)?;
        Ok(m)
    }

    /// Serialize the whole corpus as one self-describing **snapshot
    /// stream** — the follower-bootstrap payload behind the primary's
    /// `/repl/snapshot` endpoint. The stream carries the manifest, every
    /// shard file, and `absorbed_seq`: the WAL position this snapshot
    /// absorbs (every record below it is already folded in, so a
    /// follower installing the snapshot resumes pulling from exactly
    /// `absorbed_seq`). A trailing FNV-1a checksum over the whole stream
    /// catches truncation in transit before any field is trusted.
    ///
    /// Refuses a degraded corpus for the same reason `save_dir` does:
    /// the snapshot would quietly turn quarantine into deletion on
    /// every follower that bootstraps from it.
    pub fn snapshot_to_vec(&self, absorbed_seq: u64) -> Result<Vec<u8>, QueryError> {
        if self.is_degraded() {
            return Err(QueryError::InvalidInput(format!(
                "refusing to snapshot a degraded corpus ({} quarantined shard(s) would be dropped)",
                self.quarantined().len()
            )));
        }
        let shards = self.serialize_shards()?;
        let manifest = self.manifest_bytes(&shards, absorbed_seq)?;
        let mut out: Vec<u8> = Vec::new();
        let w = &mut out as &mut dyn std::io::Write;
        write_u64(w, SNAPSHOT_PREFIX | SNAPSHOT_VERSION)?;
        write_u64(w, absorbed_seq)?;
        manifest.persist(w)?;
        write_usize(w, shards.len())?;
        for (name, bytes, _) in shards {
            name.into_bytes().persist(w)?;
            bytes.persist(w)?;
        }
        let digest = fnv64(&out);
        write_u64(&mut out, digest)?;
        Ok(out)
    }

    /// Install a [`ShardedCinct::snapshot_to_vec`] stream into `dir` and
    /// open it, returning the corpus and the WAL position the snapshot
    /// absorbs. Files land through the same atomic temp-file + rename
    /// discipline as `save_dir`, manifest last, so a crash mid-install
    /// leaves either the previous corpus or the new one — never a mix.
    /// The caller owns re-basing its WAL at the returned position (see
    /// `Wal::create_at`).
    pub fn install_snapshot(
        dir: impl AsRef<FsPath>,
        stream: &[u8],
        durability: Durability,
    ) -> Result<(ShardedCinct, u64), QueryError> {
        let dir = dir.as_ref();
        if stream.len() < 24 {
            return Err(corrupt("snapshot stream too short to hold a header"));
        }
        let magic = u64::from_le_bytes(stream[..8].try_into().expect("length checked"));
        if magic & !0xffff != SNAPSHOT_PREFIX {
            return Err(corrupt("not a CiNCT snapshot (bad magic)"));
        }
        let version = magic & 0xffff;
        if version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let (body, tail) = stream.split_at(stream.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv64(body) != stored {
            crate::metrics::store().checksum_fail.inc();
            return Err(corrupt(
                "snapshot stream checksum mismatch (truncated or corrupted in transit)",
            ));
        }
        crate::metrics::store().checksum_ok.inc();
        let mut cur = Cursor::new(&body[8..]);
        let r = &mut cur as &mut dyn std::io::Read;
        let absorbed_seq = read_u64(r)?;
        let manifest: Vec<u8> = Persist::restore(r)?;
        let n_files = read_usize(r)?;
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        for i in 0..n_files {
            let name_bytes: Vec<u8> = Persist::restore(r)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| corrupt(format!("snapshot file {i}: name is not UTF-8")))?;
            if name.contains(['/', '\\']) || name.contains("..") || name.is_empty() {
                return Err(corrupt(format!(
                    "snapshot file {i}: unsafe file name {name:?}"
                )));
            }
            let bytes: Vec<u8> = Persist::restore(r)?;
            let path = dir.join(&name);
            if !path.exists() {
                write_atomic(&path, &bytes, durability)?;
            }
        }
        // Manifest last: the rename is the commit point, exactly as in
        // `save_dir`. Only after it lands does the new corpus exist.
        write_atomic(&dir.join(MANIFEST_FILE), &manifest, durability)?;
        let corpus = ShardedCinct::open_dir(dir)?;
        Ok((corpus, absorbed_seq))
    }

    /// Reopen a directory written by [`ShardedCinct::save_dir`]
    /// (strict: any structural failure anywhere fails the open).
    ///
    /// Every structural failure is a typed error (see the
    /// [module docs](self) for the taxonomy); nothing panics on corrupt
    /// or missing state.
    pub fn open_dir(dir: impl AsRef<FsPath>) -> Result<ShardedCinct, QueryError> {
        Self::open_dir_with(dir, OpenMode::Strict)
    }

    /// Reopen a directory with an explicit damage policy — see
    /// [`OpenMode`]. Under [`OpenMode::Resilient`] a shard that fails its
    /// checksum, parse, or namespace checks is **quarantined** (recorded
    /// in [`ShardedCinct::quarantined`], counted in
    /// `cinct_store_quarantined_shards_total`) and the rest of the corpus
    /// is served; its trajectories read as absent. Both modes sweep
    /// crash-leftover `*.tmp` siblings after a successful open.
    pub fn open_dir_with(
        dir: impl AsRef<FsPath>,
        mode: OpenMode,
    ) -> Result<ShardedCinct, QueryError> {
        let _span = cinct_obs::Span::enter(&crate::metrics::store().open_ns);
        let dir = dir.as_ref();
        let mpath = dir.join(MANIFEST_FILE);
        let bytes = faultio::read(&mpath).map_err(|e| io_err(&mpath, e))?;
        if bytes.len() < 16 {
            return Err(corrupt("shard manifest too short to hold a header"));
        }
        // Header sanity precedes everything: a wrong-magic or future-
        // version file should say so, not "checksum mismatch".
        let magic = u64::from_le_bytes(bytes[..8].try_into().expect("length checked"));
        if magic & !0xffff != MANIFEST_PREFIX {
            return Err(corrupt("not a CiNCT shard manifest (bad magic)"));
        }
        let version = magic & 0xffff;
        if !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version) {
            return Err(corrupt(format!(
                "unsupported shard manifest version {version} \
                 (this build reads {MANIFEST_MIN_VERSION}..={MANIFEST_VERSION})"
            )));
        }
        // Integrity: trailing FNV over the whole body. Catches truncation
        // and bit rot before any field is parsed.
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv64(body) != stored {
            crate::metrics::store().checksum_fail.inc();
            return Err(corrupt(
                "shard manifest checksum mismatch (truncated or corrupted)",
            ));
        }
        crate::metrics::store().checksum_ok.inc();
        let mut cur = Cursor::new(&body[8..]);
        let r = &mut cur as &mut dyn std::io::Read;
        // The absorbed WAL position: consumed here to keep the cursor
        // aligned, read directly by `manifest_wal_position` (the WAL's
        // replay filter), irrelevant to the corpus itself.
        let _wal_position = read_u64(r)?;
        let n_edges = read_usize(r)?;
        let block_size = read_usize(r)?;
        let locate = read_usize(r)?;
        let ltag = read_u64(r)?;
        let lseed = read_u64(r)?;
        let labeling = labeling_from_raw(ltag, lseed)?;
        let partition = partition_from_raw(read_u64(r)?)?;
        let threads = read_usize(r)?;
        let n_trajs = read_usize(r)?;
        let n_shards = read_usize(r)?;
        let mut index_builder = CinctBuilder::new()
            .block_size(block_size)
            .labeling(labeling);
        if locate > 0 {
            index_builder = index_builder.locate_sampling(locate);
        }
        let config = ShardedBuilder::new()
            .shards(n_shards.max(1))
            .partition(partition)
            .threads(threads)
            .index_builder(index_builder);

        let mut shards = Vec::with_capacity(n_shards);
        let mut quarantined: Vec<QuarantinedShard> = Vec::new();
        // Which global IDs the accepted shards claim — resilient mode
        // must reject a duplicate claim per shard, not per corpus.
        let mut seen = vec![false; n_trajs];
        for s in 0..n_shards {
            // Manifest fields always parse (the stream has one layout);
            // only the shard *file* and its cross-checks can quarantine.
            let name_bytes: Vec<u8> = Persist::restore(r)?;
            let name = String::from_utf8_lossy(&name_bytes).into_owned();
            let n_local = read_usize(r)?;
            let checksum = read_u64(r)?;
            let globals: Vec<u32> = Persist::restore(r)?;
            // v3 manifests carry the shard's pruning block; v2 predates
            // it (load_shard re-derives from the index, exactly).
            let pruning = if version >= 3 {
                Some(crate::prune::ShardPruning::restore(r)?)
            } else {
                None
            };
            match load_shard(
                dir, s, &name, n_local, checksum, &globals, pruning, n_edges, &mut seen,
            ) {
                Ok(shard) => shards.push(shard),
                Err(e) if mode == OpenMode::Resilient => {
                    crate::metrics::store().quarantined.inc();
                    quarantined.push(QuarantinedShard {
                        slot: s,
                        file: name,
                        trajectories: n_local,
                        reason: e.to_string(),
                    });
                }
                Err(e) => return Err(e),
            }
        }
        let loaded =
            ShardedCinct::assemble_with_holes(shards, n_trajs, n_edges, config, quarantined)?;
        if loaded.num_trajectories() != n_trajs {
            return Err(corrupt(format!(
                "manifest declares {n_trajs} trajectories, shards hold {}",
                loaded.num_trajectories()
            )));
        }
        // A crashed save can strand `*.tmp` siblings forever (save_dir's
        // GC only runs on the next save). Sweep them now that the open
        // proved the directory coherent. Best effort.
        if let Ok(rd) = std::fs::read_dir(dir) {
            for entry in rd.flatten() {
                let is_tmp = entry.file_name().to_string_lossy().ends_with(".tmp");
                if is_tmp && std::fs::remove_file(entry.path()).is_ok() {
                    crate::metrics::store().tmp_swept.inc();
                }
            }
        }
        Ok(loaded)
    }
}

/// Load + fully validate one shard: manifest cross-checks (safe file
/// name, ID-column arity, namespace claims against `seen`), then the
/// file itself (checksum before parse). Marks `seen` only on success so
/// a rejected shard leaves no namespace footprint.
///
/// `pruning` is the manifest's v3 block when present; it is trusted only
/// after a shape + ID-span sanity check, and re-derived from the loaded
/// index otherwise (derivation is exact, so a v2 manifest — or a
/// mismatched block — costs O(σ) per shard, never correctness).
#[allow(clippy::too_many_arguments)]
fn load_shard(
    dir: &FsPath,
    s: usize,
    name: &str,
    n_local: usize,
    checksum: u64,
    globals: &[u32],
    pruning: Option<crate::prune::ShardPruning>,
    n_edges: usize,
    seen: &mut [bool],
) -> Result<Shard, QueryError> {
    if name.contains(['/', '\\']) || name.contains("..") || name.is_empty() {
        return Err(corrupt(format!(
            "shard {s}: unsafe file name {name:?} in manifest"
        )));
    }
    if globals.len() != n_local {
        return Err(corrupt(format!(
            "shard {s}: manifest declares {n_local} trajectories but lists {} IDs",
            globals.len()
        )));
    }
    // Claim the shard's IDs up front (so a duplicate inside the shard is
    // caught too), rolling every claim back if anything later fails —
    // a quarantined shard must leave no namespace footprint.
    let rollback = |seen: &mut [bool], n: usize| {
        for &g in &globals[..n] {
            seen[g as usize] = false;
        }
    };
    for (i, &g) in globals.iter().enumerate() {
        let gi = g as usize;
        if gi >= seen.len() {
            rollback(seen, i);
            return Err(corrupt(format!(
                "shard {s}: global trajectory id {g} out of range (corpus has {})",
                seen.len()
            )));
        }
        if seen[gi] {
            rollback(seen, i);
            return Err(corrupt(format!(
                "shard {s}: global trajectory id {g} claimed twice"
            )));
        }
        seen[gi] = true;
    }
    let spath = dir.join(name);
    let loaded = (|| {
        let sbytes = faultio::read(&spath).map_err(|e| io_err(&spath, e))?;
        if fnv64(&sbytes) != checksum {
            crate::metrics::store().checksum_fail.inc();
            return Err(corrupt(format!(
                "shard file {} checksum mismatch (truncated or corrupted)",
                spath.display()
            )));
        }
        crate::metrics::store().checksum_ok.inc();
        CinctIndex::read_from(&mut Cursor::new(sbytes))
    })();
    match loaded {
        Ok(index) => {
            let pruning = pruning
                .filter(|p| p.matches(n_edges, globals))
                .unwrap_or_else(|| crate::prune::ShardPruning::derive(&index, n_edges, globals));
            Ok(Shard {
                index,
                globals: globals.to_vec(),
                pruning,
            })
        }
        Err(e) => {
            rollback(seen, globals.len());
            Err(e)
        }
    }
}

/// The WAL position stamped into `dir`'s manifest by
/// [`ShardedCinct::save_dir_at`] — every journaled record below it is
/// already folded into the saved corpus. `None` when there is no
/// manifest, or it fails its magic/version/checksum checks (the full
/// open will report that damage properly; the WAL replay filter just
/// falls back to replaying everything). Reads through `std::fs`, not
/// [`faultio`], so consulting it never perturbs an armed fault plan's
/// operation counts.
pub(crate) fn manifest_wal_position(dir: &FsPath) -> Option<u64> {
    let bytes = std::fs::read(dir.join(MANIFEST_FILE)).ok()?;
    if bytes.len() < 24 {
        return None;
    }
    let magic = u64::from_le_bytes(bytes[..8].try_into().ok()?);
    if magic & !0xffff != MANIFEST_PREFIX
        || !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&(magic & 0xffff))
    {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if fnv64(body) != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct_fmindex::{Path, PathQuery};

    fn paper_trajs() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]]
    }

    /// Fresh scratch directory under the system temp dir.
    fn scratch(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cinct-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn build_sharded() -> ShardedCinct {
        ShardedBuilder::new()
            .shards(3)
            .locate_sampling(2)
            .build(&paper_trajs(), 6)
    }

    /// Shard files currently in `dir`, sorted (so `[0]` is shard 0 —
    /// names embed the shard index first).
    fn shard_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                let n = p.file_name().unwrap().to_string_lossy().into_owned();
                n.starts_with("shard-") && n.ends_with(".cinct")
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = scratch("roundtrip");
        let sharded = build_sharded();
        sharded.save_dir(&dir).unwrap();
        let back = ShardedCinct::open_dir(&dir).unwrap();
        assert_eq!(back.num_shards(), sharded.num_shards());
        assert_eq!(back.num_trajectories(), sharded.num_trajectories());
        assert_eq!(back.network_edges(), 6);
        for g in 0..4 {
            assert_eq!(back.trajectory(g), sharded.trajectory(g), "g={g}");
        }
        assert_eq!(back.count(Path::new(&[0, 1])), 2);
        assert_eq!(
            back.occurrences(Path::new(&[1, 2]))
                .unwrap()
                .collect_sorted(),
            vec![(1, 1), (2, 0)]
        );
        // The restored config keeps building compatible shards.
        let mut back = back;
        back.append_batch(&[vec![1, 2]]).unwrap();
        assert_eq!(back.count(Path::new(&[1, 2])), 3);
        assert!(back.locate_supported());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_append_then_save_roundtrips_again() {
        let dir = scratch("append-resave");
        let mut sharded = build_sharded();
        sharded.save_dir(&dir).unwrap();
        sharded.append_batch(&[vec![0, 1, 2]]).unwrap();
        sharded.save_dir(&dir).unwrap();
        let back = ShardedCinct::open_dir(&dir).unwrap();
        assert_eq!(back.num_trajectories(), 5);
        assert_eq!(back.trajectory(4), vec![0, 1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_and_manifest_are_io_errors() {
        let dir = scratch("missing");
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::Io(msg)) => assert!(msg.contains(MANIFEST_FILE), "{msg}"),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn missing_shard_file_is_an_io_error() {
        let dir = scratch("missing-shard");
        build_sharded().save_dir(&dir).unwrap();
        let victim = shard_files(&dir).remove(1);
        std::fs::remove_file(&victim).unwrap();
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::Io(msg)) => {
                assert!(
                    msg.contains(&*victim.file_name().unwrap().to_string_lossy()),
                    "{msg}"
                )
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saves_are_incremental_and_garbage_collected() {
        // Content-addressed shard files: an append + re-save writes only
        // the new shard; a compact + re-save replaces the set and GCs
        // the previous generation.
        let dir = scratch("gc");
        let mut sharded = build_sharded();
        sharded.save_dir(&dir).unwrap();
        let first_gen = shard_files(&dir);
        assert_eq!(first_gen.len(), sharded.num_shards());
        let mtime = |p: &std::path::PathBuf| std::fs::metadata(p).unwrap().modified().unwrap();
        let stamps: Vec<_> = first_gen.iter().map(&mtime).collect();
        sharded.append_batch(&[vec![0, 1, 2]]).unwrap();
        sharded.save_dir(&dir).unwrap();
        // Old shard files survive untouched (same mtime), one new file.
        let second_gen = shard_files(&dir);
        assert_eq!(second_gen.len(), first_gen.len() + 1);
        for (p, stamp) in first_gen.iter().zip(&stamps) {
            assert_eq!(&mtime(p), stamp, "{p:?} was rewritten");
        }
        // Compaction changes every shard: the old generation is GC'd.
        sharded.compact(2).unwrap();
        sharded.save_dir(&dir).unwrap();
        let third_gen = shard_files(&dir);
        assert_eq!(third_gen.len(), sharded.num_shards());
        for old in &second_gen {
            assert!(!third_gen.contains(old), "stale {old:?} not collected");
        }
        let back = ShardedCinct::open_dir(&dir).unwrap();
        assert_eq!(back.num_trajectories(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_save_leaves_the_old_index_loadable() {
        // Simulate a crash between "new shard files written" and "new
        // manifest renamed": write a *different* index's shard files into
        // the directory without touching the manifest. The old manifest
        // must still load the old index, referencing only old files.
        let dir = scratch("crash");
        let sharded = build_sharded();
        sharded.save_dir(&dir).unwrap();
        let mut bigger = sharded.clone();
        bigger.append_batch(&[vec![1, 2, 5]]).unwrap();
        bigger.compact(2).unwrap();
        // "Crashed" save: the new generation's shard files appear (what
        // save_dir writes before the manifest rename) but the manifest
        // rename never happens — old manifest and old files untouched.
        let staging = scratch("crash-staging");
        bigger.save_dir(&staging).unwrap();
        for f in shard_files(&staging) {
            std::fs::copy(&f, dir.join(f.file_name().unwrap())).unwrap();
        }
        std::fs::remove_dir_all(&staging).unwrap();
        let back = ShardedCinct::open_dir(&dir).unwrap();
        assert_eq!(back.num_trajectories(), sharded.num_trajectories());
        assert_eq!(back.count(Path::new(&[0, 1])), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_bad_version_are_corrupt_index() {
        let dir = scratch("magic");
        build_sharded().save_dir(&dir).unwrap();
        let mpath = dir.join(MANIFEST_FILE);
        let original = std::fs::read(&mpath).unwrap();

        // Not a manifest at all.
        let mut garbled = original.clone();
        garbled[..8].copy_from_slice(&0xdead_beef_dead_beefu64.to_le_bytes());
        std::fs::write(&mpath, &garbled).unwrap();
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::CorruptIndex(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected CorruptIndex, got {other:?}"),
        }

        // Right magic, future version.
        let mut future = original.clone();
        future[..8].copy_from_slice(&(MANIFEST_PREFIX | 999).to_le_bytes());
        std::fs::write(&mpath, &future).unwrap();
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::CorruptIndex(msg)) => {
                assert!(msg.contains("version 999"), "{msg}")
            }
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_and_bit_flipped_manifests_are_corrupt_index() {
        let dir = scratch("truncate");
        build_sharded().save_dir(&dir).unwrap();
        let mpath = dir.join(MANIFEST_FILE);
        let original = std::fs::read(&mpath).unwrap();

        // Truncation (drop the tail — checksum no longer matches).
        std::fs::write(&mpath, &original[..original.len() - 9]).unwrap();
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::CorruptIndex(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected CorruptIndex, got {other:?}"),
        }

        // Truncation below a parseable header.
        std::fs::write(&mpath, &original[..10]).unwrap();
        assert!(matches!(
            ShardedCinct::open_dir(&dir),
            Err(QueryError::CorruptIndex(_))
        ));

        // A flipped bit mid-body.
        let mut flipped = original.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&mpath, &flipped).unwrap();
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::CorruptIndex(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_shard_file_is_corrupt_index() {
        let dir = scratch("shard-corrupt");
        build_sharded().save_dir(&dir).unwrap();
        let spath = shard_files(&dir).remove(0);
        let mut bytes = std::fs::read(&spath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&spath, &bytes).unwrap();
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::CorruptIndex(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        // Truncated shard file: also caught by the checksum, before the
        // index parser ever runs.
        let spath = shard_files(&dir).remove(1);
        let bytes = std::fs::read(&spath).unwrap();
        std::fs::write(&spath, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            ShardedCinct::open_dir(&dir),
            Err(QueryError::CorruptIndex(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_manifest_without_pruning_blocks_opens_cleanly() {
        // Backward compat: a pre-pruning (v2) manifest must open, with
        // pruning metadata re-derived from the shard indexes — and the
        // reopened corpus must prune exactly like the original.
        let dir = scratch("v2-compat");
        let sharded = build_sharded();
        sharded.save_dir(&dir).unwrap();
        let shards = sharded.serialize_shards().unwrap();
        let v2 = sharded.manifest_bytes_at(&shards, 7, 2).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), &v2).unwrap();
        assert_eq!(manifest_wal_position(&dir), Some(7));
        let back = ShardedCinct::open_dir(&dir).unwrap();
        assert_eq!(back.num_trajectories(), sharded.num_trajectories());
        for s in 0..back.num_shards() {
            assert_eq!(
                back.shard_pruning(s),
                sharded.shard_pruning(s),
                "derived pruning for shard {s} diverged from the original"
            );
        }
        assert_eq!(back.count(Path::new(&[0, 1])), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_manifest_version_is_rejected_typed() {
        // Forward compat: the version gate that would make an older (v2-
        // only) build reject today's v3 manifests must reject tomorrow's
        // v4 the same way — a typed CorruptIndex naming both versions.
        let dir = scratch("v4-future");
        build_sharded().save_dir(&dir).unwrap();
        let mpath = dir.join(MANIFEST_FILE);
        let mut future = std::fs::read(&mpath).unwrap();
        future[..8].copy_from_slice(&(MANIFEST_PREFIX | (MANIFEST_VERSION + 1)).to_le_bytes());
        std::fs::write(&mpath, &future).unwrap();
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::CorruptIndex(msg)) => {
                assert!(msg.contains("version 4"), "{msg}");
                assert!(msg.contains("2..=3"), "{msg}");
            }
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        // The WAL replay filter is equally strict about versions.
        assert_eq!(manifest_wal_position(&dir), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_checksum_covers_the_pruning_block() {
        // The pruning blocks sit between the shard directory and the
        // trailing FNV checksum — a flipped bit inside one must fail the
        // open before any field is trusted.
        let dir = scratch("prune-bitflip");
        build_sharded().save_dir(&dir).unwrap();
        let mpath = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&mpath).unwrap();
        // The last shard's pruning block ends 16 bytes (ID span) before
        // the 8-byte checksum tail; flip a bit inside the span fields.
        let idx = bytes.len() - 12;
        bytes[idx] ^= 0x20;
        std::fs::write(&mpath, &bytes).unwrap();
        match ShardedCinct::open_dir(&dir) {
            Err(QueryError::CorruptIndex(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_corpus_prunes_like_the_original() {
        // Round-robin over the paper corpus puts edge 3 only in shard 1;
        // the persisted pruning block must reproduce that skip on open.
        let dir = scratch("prune-roundtrip");
        let sharded = ShardedBuilder::new()
            .shards(2)
            .partition(ShardPartition::RoundRobin)
            .build(&paper_trajs(), 6);
        assert_eq!(sharded.pruned_edge(0, Path::new(&[0, 3])), Some(3));
        sharded.save_dir(&dir).unwrap();
        let back = ShardedCinct::open_dir(&dir).unwrap();
        assert_eq!(back.pruned_edge(0, Path::new(&[0, 3])), Some(3));
        assert_eq!(back.pruned_edge(1, Path::new(&[0, 3])), None);
        assert_eq!(back.shard_id_span(0), sharded.shard_id_span(0));
        assert_eq!(back.count(Path::new(&[0, 3])), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_roundtrip_installs_an_identical_corpus() {
        let dir = scratch("snapshot");
        let sharded = build_sharded();
        let stream = sharded.snapshot_to_vec(42).unwrap();
        let (back, absorbed) =
            ShardedCinct::install_snapshot(&dir, &stream, Durability::Fast).unwrap();
        assert_eq!(absorbed, 42);
        assert_eq!(back.num_trajectories(), sharded.num_trajectories());
        for g in 0..4 {
            assert_eq!(back.trajectory(g), sharded.trajectory(g), "g={g}");
        }
        assert_eq!(back.count(Path::new(&[0, 1])), 2);
        // Installing over an older corpus replaces it atomically.
        let mut bigger = sharded.clone();
        bigger.append_batch(&[vec![1, 2, 5]]).unwrap();
        let stream2 = bigger.snapshot_to_vec(43).unwrap();
        let (back2, absorbed2) =
            ShardedCinct::install_snapshot(&dir, &stream2, Durability::Fast).unwrap();
        assert_eq!(absorbed2, 43);
        assert_eq!(back2.num_trajectories(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_stream_is_corrupt_index() {
        let dir = scratch("snapshot-trunc");
        let stream = build_sharded().snapshot_to_vec(0).unwrap();
        match ShardedCinct::install_snapshot(&dir, &stream[..stream.len() - 3], Durability::Fast) {
            Err(QueryError::CorruptIndex(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected CorruptIndex, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the checksum so a refactor can't silently change the
        // on-disk format.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"cinct"), {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in b"cinct" {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            h
        });
    }
}
