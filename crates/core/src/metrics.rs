//! The engine's metric catalog: every instrumentation point in this
//! crate records through the handle structs below into
//! [`cinct_obs::global()`], so the CLI (`cinct stats --metrics`) and any
//! embedding server expose one coherent view.
//!
//! Handles are resolved once per process through a `OnceLock`, so a hot
//! path pays one acquire load plus the relaxed-atomic sample itself —
//! the bench gate holds the query and build paths to their committed
//! baselines with all of this enabled.
//!
//! Metric names follow the Prometheus convention: `_total` counters,
//! `_ns` nanosecond histograms, bare names for gauges.

use crate::builder::ConstructionTimings;
use cinct_obs::{Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Query-engine metrics ([`crate::engine::QueryEngine`]).
pub struct EngineMetrics {
    /// Queries evaluated, any operation, success or failure.
    pub queries: Arc<Counter>,
    /// Queries that returned a typed error.
    pub errors: Arc<Counter>,
    /// Latency of count queries.
    pub count_ns: Arc<Histogram>,
    /// Latency of suffix-range queries.
    pub range_ns: Arc<Histogram>,
    /// Latency of occurrence-listing queries.
    pub occurrences_ns: Arc<Histogram>,
    /// Latency of extraction queries.
    pub extract_ns: Arc<Histogram>,
    /// Batch sizes handed to [`crate::engine::QueryEngine::run`].
    pub batch_size: Arc<Histogram>,
    /// Threads the most recent batch actually used.
    pub threads: Arc<Gauge>,
}

/// Engine metric handles (resolved once, then lock-free).
pub fn engine() -> &'static EngineMetrics {
    static M: OnceLock<EngineMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cinct_obs::global();
        EngineMetrics {
            queries: r.counter(
                "cinct_queries_total",
                "Queries evaluated by the batch engine",
            ),
            errors: r.counter(
                "cinct_query_errors_total",
                "Queries that failed with a typed error",
            ),
            count_ns: r.histogram("cinct_query_count_ns", "Count query latency (ns)"),
            range_ns: r.histogram("cinct_query_range_ns", "Suffix-range query latency (ns)"),
            occurrences_ns: r.histogram(
                "cinct_query_occurrences_ns",
                "Occurrence-listing query latency (ns)",
            ),
            extract_ns: r.histogram("cinct_query_extract_ns", "Extraction query latency (ns)"),
            batch_size: r.histogram("cinct_batch_size", "Queries per engine batch"),
            threads: r.gauge(
                "cinct_engine_threads",
                "Threads used by the most recent batch",
            ),
        }
    })
}

/// Sharding metrics ([`crate::shard::ShardedCinct`]).
pub struct ShardMetrics {
    /// Fan-out range computations across the shard set.
    pub fanout_queries: Arc<Counter>,
    /// Shard probes that actually ran a backward search (pruned shards
    /// are not visited).
    pub fanout_shards_visited: Arc<Counter>,
    /// Shard probes that found the path.
    pub fanout_shards_matched: Arc<Counter>,
    /// Shard probes whose backward search emptied early (path absent in
    /// that shard).
    pub fanout_shards_short_circuited: Arc<Counter>,
    /// Shards skipped because their edge-membership set ruled out a
    /// pattern edge — no backward search ran there.
    pub fanout_shards_pruned: Arc<Counter>,
    /// Whole fan-outs answered `None` from the corpus-level membership
    /// union alone (a pattern edge occurs in no shard).
    pub fanout_union_rejects: Arc<Counter>,
    /// Latency of sealing a batch into a new shard.
    pub append_ns: Arc<Histogram>,
    /// Latency of compacting the corpus to a target shard count.
    pub compact_ns: Arc<Histogram>,
}

/// Shard metric handles (resolved once, then lock-free).
pub fn shard() -> &'static ShardMetrics {
    static M: OnceLock<ShardMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cinct_obs::global();
        ShardMetrics {
            fanout_queries: r.counter(
                "cinct_fanout_queries_total",
                "Fan-out range computations across the shard set",
            ),
            fanout_shards_visited: r.counter(
                "cinct_fanout_shards_visited_total",
                "Shard probes executed by fan-out queries",
            ),
            fanout_shards_matched: r.counter(
                "cinct_fanout_shards_matched_total",
                "Shard probes that found the path",
            ),
            fanout_shards_short_circuited: r.counter(
                "cinct_fanout_shards_short_circuited_total",
                "Shard probes whose backward search emptied early",
            ),
            fanout_shards_pruned: r.counter(
                "cinct_fanout_shards_pruned_total",
                "Shards skipped by edge-membership pruning (no search ran)",
            ),
            fanout_union_rejects: r.counter(
                "cinct_fanout_union_rejects_total",
                "Fan-outs answered absent from the membership union alone",
            ),
            append_ns: r.histogram("cinct_shard_append_ns", "append_batch latency (ns)"),
            compact_ns: r.histogram("cinct_shard_compact_ns", "compact latency (ns)"),
        }
    })
}

/// Persistence metrics ([`crate::store`]).
pub struct StoreMetrics {
    /// Latency of saving a sharded corpus directory.
    pub save_ns: Arc<Histogram>,
    /// Latency of opening a sharded corpus directory.
    pub open_ns: Arc<Histogram>,
    /// Checksum verifications that passed (manifest + shard files).
    pub checksum_ok: Arc<Counter>,
    /// Checksum verifications that failed.
    pub checksum_fail: Arc<Counter>,
    /// fsync calls that failed (durability unknown — the save/append errors).
    pub fsync_fail: Arc<Counter>,
    /// Shards a resilient open quarantined instead of serving.
    pub quarantined: Arc<Counter>,
    /// Crash-leftover `*.tmp` files swept by `open_dir`.
    pub tmp_swept: Arc<Counter>,
    /// Append batches journaled to the WAL (before acking).
    pub wal_appends: Arc<Counter>,
    /// WAL records replayed into a corpus on startup.
    pub wal_replayed: Arc<Counter>,
    /// WAL truncations after a successful save made records redundant.
    pub wal_truncations: Arc<Counter>,
    /// Torn/corrupt WAL tails dropped on open (normal after a crash
    /// mid-append: the torn record was never acked).
    pub wal_torn_tail: Arc<Counter>,
    /// Latency of one durable WAL append — journal write + fsync (ns).
    pub wal_append_ns: Arc<Histogram>,
}

/// Store metric handles (resolved once, then lock-free).
pub fn store() -> &'static StoreMetrics {
    static M: OnceLock<StoreMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cinct_obs::global();
        StoreMetrics {
            save_ns: r.histogram("cinct_store_save_ns", "save_dir latency (ns)"),
            open_ns: r.histogram("cinct_store_open_ns", "open_dir latency (ns)"),
            checksum_ok: r.counter(
                "cinct_store_checksum_ok_total",
                "Checksum verifications that passed",
            ),
            checksum_fail: r.counter(
                "cinct_store_checksum_fail_total",
                "Checksum verifications that failed",
            ),
            fsync_fail: r.counter("cinct_store_fsync_fail_total", "fsync calls that failed"),
            quarantined: r.counter(
                "cinct_store_quarantined_shards_total",
                "Shards quarantined by resilient opens",
            ),
            tmp_swept: r.counter(
                "cinct_store_tmp_swept_total",
                "Crash-leftover .tmp files swept by open_dir",
            ),
            wal_appends: r.counter(
                "cinct_wal_appends_total",
                "Append batches journaled to the WAL",
            ),
            wal_replayed: r.counter(
                "cinct_wal_replayed_total",
                "WAL records replayed into a corpus on startup",
            ),
            wal_truncations: r.counter(
                "cinct_wal_truncations_total",
                "WAL truncations after a successful save",
            ),
            wal_torn_tail: r.counter(
                "cinct_wal_torn_tail_total",
                "Torn or corrupt WAL tails dropped on open",
            ),
            wal_append_ns: r.histogram(
                "cinct_wal_append_ns",
                "Durable WAL append latency: journal write + fsync (ns)",
            ),
        }
    })
}

/// Construction metrics ([`crate::builder::CinctBuilder`]): the
/// [`ConstructionTimings`] breakdown, one histogram sample per stage per
/// build, so a long-lived process reports builds exactly like `cinct
/// build` prints them.
pub struct BuildMetrics {
    /// Index builds completed (monolithic or per shard).
    pub builds: Arc<Counter>,
    /// Corpus ingestion stage (ns).
    pub ingest_ns: Arc<Histogram>,
    /// Suffix-array stage (ns).
    pub sa_ns: Arc<Histogram>,
    /// BWT derivation stage (ns).
    pub bwt_ns: Arc<Histogram>,
    /// ET-graph / RML labeling stage (ns).
    pub et_graph_ns: Arc<Histogram>,
    /// Wavelet-tree build stage (ns).
    pub wt_ns: Arc<Histogram>,
    /// Directory + SA-samples stage (ns).
    pub directory_ns: Arc<Histogram>,
    /// End-to-end build time (ns).
    pub total_ns: Arc<Histogram>,
}

/// Record one measured ingest stage (see [`record_build`] for why it is
/// separate).
pub fn record_ingest(d: Duration) {
    build().ingest_ns.record(ns(d));
}

/// Build metric handles (resolved once, then lock-free).
pub fn build() -> &'static BuildMetrics {
    static M: OnceLock<BuildMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cinct_obs::global();
        BuildMetrics {
            builds: r.counter("cinct_builds_total", "Index builds completed"),
            ingest_ns: r.histogram("cinct_build_ingest_ns", "Corpus ingestion stage (ns)"),
            sa_ns: r.histogram("cinct_build_sa_ns", "Suffix-array stage (ns)"),
            bwt_ns: r.histogram("cinct_build_bwt_ns", "BWT derivation stage (ns)"),
            et_graph_ns: r.histogram(
                "cinct_build_et_graph_ns",
                "ET-graph / RML labeling stage (ns)",
            ),
            wt_ns: r.histogram("cinct_build_wt_ns", "Wavelet-tree build stage (ns)"),
            directory_ns: r.histogram(
                "cinct_build_directory_ns",
                "Directory + SA-samples stage (ns)",
            ),
            total_ns: r.histogram(
                "cinct_build_total_ns",
                "Build time across pipeline stages (ns, excluding ingest)",
            ),
        }
    })
}

/// Resolve every handle struct, forcing the full metric catalog into the
/// registry. Exposition endpoints call this so idle metrics show up as
/// zeros instead of being absent.
pub fn register_all() {
    let _ = engine();
    let _ = shard();
    let _ = store();
    let _ = build();
}

#[inline]
fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Fold one build's [`ConstructionTimings`] into the registry.
///
/// Ingest is **not** recorded here: at the pipeline funnel
/// (`build_from_trajectory_string`) it is still zero — the entry points
/// that measure ingest (`build_timed`, `build_streamed`) sample
/// [`BuildMetrics::ingest_ns`] themselves.
pub fn record_build(t: &ConstructionTimings) {
    let m = build();
    m.builds.inc();
    m.sa_ns.record(ns(t.sa));
    m.bwt_ns.record(ns(t.bwt));
    m.et_graph_ns.record(ns(t.et_graph_build));
    m.wt_ns.record(ns(t.wt_build));
    m.directory_ns.record(ns(t.directory));
    m.total_ns.record(ns(t.total()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_stable_and_registered_once() {
        let a = engine() as *const EngineMetrics;
        let b = engine() as *const EngineMetrics;
        assert_eq!(a, b);
        // Re-resolution returns the same underlying metric.
        let before = engine().queries.get();
        engine().queries.inc();
        assert_eq!(engine().queries.get(), before + 1);
    }

    #[test]
    fn record_build_populates_every_stage() {
        let t = ConstructionTimings {
            ingest: Duration::from_nanos(10),
            sa: Duration::from_nanos(20),
            bwt: Duration::from_nanos(30),
            et_graph_build: Duration::from_nanos(40),
            wt_build: Duration::from_nanos(50),
            directory: Duration::from_nanos(60),
        };
        let builds_before = build().builds.get();
        let totals_before = build().total_ns.count();
        record_build(&t);
        assert_eq!(build().builds.get(), builds_before + 1);
        assert_eq!(build().total_ns.count(), totals_before + 1);
        assert!(build().sa_ns.sum() >= 20);
    }
}
