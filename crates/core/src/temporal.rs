//! Temporal extension: timestamped trajectories and strict path queries.
//!
//! The paper deliberately scopes CiNCT to spatial paths and points at
//! SNT-index-style hybrids for timestamps (§VII: "our method can be
//! directly applied to some pioneering methods for spatio-temporal NCT
//! processing \[3\], \[6\]"). This module implements that integration: a
//! [`TemporalCinct`] pairs a locate-enabled [`CinctIndex`] with
//! delta-compressed per-trajectory timestamps and answers **strict path
//! queries** (Krogh et al. \[28\]): *find trajectories that traveled along
//! path `P` entirely within time interval `I`*.
//!
//! The temporal layer composes on the unified query API rather than on
//! CiNCT internals: [`TemporalCinct::strict_path_iter`] drives the
//! spatial backend's streaming [`PathQuery::occurrences`] iterator and
//! filters each `(trajectory, offset)` against the timestamp store as it
//! arrives — any backend implementing `PathQuery` with locate support
//! could sit underneath. [`TemporalCinct`] itself implements [`PathQuery`],
//! so it drops into the same engines and benches as the spatial indexes.

use crate::builder::CinctBuilder;
use crate::index::CinctIndex;
use cinct_fmindex::{OccurIter, OccurrenceSource, Path, PathQuery, QueryError};
use cinct_succinct::{IntVec, SpaceUsage, Symbol};
use std::ops::Range;

/// A trajectory with one timestamp per edge entry (seconds, non-decreasing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimestampedTrajectory {
    /// Edge IDs, in travel order.
    pub edges: Vec<u32>,
    /// Entry time (seconds) of each edge; same length as `edges`.
    pub times: Vec<u64>,
}

impl TimestampedTrajectory {
    /// Validate lengths and monotonicity.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.edges.len() != self.times.len() {
            return Err(QueryError::InvalidInput(format!(
                "edges ({}) vs times ({}) length mismatch",
                self.edges.len(),
                self.times.len()
            )));
        }
        if self.times.windows(2).any(|w| w[1] < w[0]) {
            return Err(QueryError::InvalidInput(
                "timestamps must be non-decreasing".into(),
            ));
        }
        Ok(())
    }
}

/// A strict path query: a forward path plus an inclusive time interval.
#[derive(Clone, Debug)]
pub struct StrictPathQuery {
    /// The path (edge IDs, forward order).
    pub path: Vec<u32>,
    /// Inclusive interval start (seconds).
    pub t_begin: u64,
    /// Inclusive interval end (seconds).
    pub t_end: u64,
}

/// Delta-compressed timestamp store: per trajectory, the start time plus
/// packed per-step deltas.
#[derive(Clone, Debug)]
struct TimestampStore {
    /// Absolute start time per trajectory.
    starts: Vec<u64>,
    /// CSR offsets into `deltas` per trajectory.
    offsets: Vec<u32>,
    /// Packed per-step deltas (width = bits of the max delta).
    deltas: IntVec,
}

impl TimestampStore {
    fn build(trajs: &[TimestampedTrajectory]) -> Self {
        let total_steps: usize = trajs.iter().map(|t| t.times.len().saturating_sub(1)).sum();
        let max_delta = trajs
            .iter()
            .flat_map(|t| t.times.windows(2).map(|w| w[1] - w[0]))
            .max()
            .unwrap_or(0);
        let mut starts = Vec::with_capacity(trajs.len());
        let mut offsets = Vec::with_capacity(trajs.len() + 1);
        let mut deltas = IntVec::with_capacity(IntVec::width_for(max_delta), total_steps);
        offsets.push(0u32);
        for t in trajs {
            starts.push(t.times.first().copied().unwrap_or(0));
            for w in t.times.windows(2) {
                deltas.push(w[1] - w[0]);
            }
            offsets.push(deltas.len() as u32);
        }
        Self {
            starts,
            offsets,
            deltas,
        }
    }

    /// Entry time of edge `offset` within trajectory `id`.
    fn time_at(&self, id: usize, offset: usize) -> u64 {
        let lo = self.offsets[id] as usize;
        debug_assert!(lo + offset <= self.offsets[id + 1] as usize);
        let mut t = self.starts[id];
        for k in 0..offset {
            t += self.deltas.get(lo + k);
        }
        t
    }

    fn size_in_bytes(&self) -> usize {
        self.starts.capacity() * 8 + self.offsets.capacity() * 4 + self.deltas.size_in_bytes()
    }
}

/// Spatio-temporal index: CiNCT for the spatial paths + compressed
/// timestamps, answering strict path queries.
#[derive(Clone, Debug)]
pub struct TemporalCinct {
    index: CinctIndex,
    times: TimestampStore,
}

/// One strict-path match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrictPathMatch {
    /// Trajectory id.
    pub trajectory: usize,
    /// Edge offset within the trajectory where the path starts.
    pub offset: usize,
    /// Entry time of the first path edge.
    pub t_enter: u64,
    /// Entry time of the last path edge.
    pub t_exit: u64,
}

/// Streaming strict-path matches: filters the spatial backend's
/// [`OccurIter`] against the timestamp store, one occurrence at a time.
/// Created by [`TemporalCinct::strict_path_iter`].
pub struct StrictIter<'a> {
    occurrences: OccurIter<'a>,
    times: &'a TimestampStore,
    path_len: usize,
    t_begin: u64,
    t_end: u64,
}

impl Iterator for StrictIter<'_> {
    type Item = StrictPathMatch;

    fn next(&mut self) -> Option<StrictPathMatch> {
        for (trajectory, offset) in self.occurrences.by_ref() {
            let t_enter = self.times.time_at(trajectory, offset);
            let t_exit = self.times.time_at(trajectory, offset + self.path_len - 1);
            if t_enter >= self.t_begin && t_exit <= self.t_end {
                return Some(StrictPathMatch {
                    trajectory,
                    offset,
                    t_enter,
                    t_exit,
                });
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Every remaining occurrence may pass or fail the time filter.
        (0, self.occurrences.size_hint().1)
    }
}

impl TemporalCinct {
    /// Build from timestamped trajectories, validating every input
    /// trajectory up front. `sa_sampling` controls the locate cost/space
    /// trade-off (e.g. 32).
    pub fn build(
        trajs: &[TimestampedTrajectory],
        n_edges: usize,
        sa_sampling: usize,
    ) -> Result<Self, QueryError> {
        for (i, t) in trajs.iter().enumerate() {
            t.validate().map_err(|e| match e {
                QueryError::InvalidInput(msg) => {
                    QueryError::InvalidInput(format!("trajectory {i}: {msg}"))
                }
                other => other,
            })?;
        }
        let edge_seqs: Vec<Vec<u32>> = trajs.iter().map(|t| t.edges.clone()).collect();
        let index = CinctBuilder::new()
            .locate_sampling(sa_sampling)
            .build(&edge_seqs, n_edges);
        let times = TimestampStore::build(trajs);
        Ok(Self { index, times })
    }

    /// The underlying spatial index.
    pub fn spatial(&self) -> &CinctIndex {
        &self.index
    }

    /// Stream the matches of a strict path query: occurrences of `q.path`
    /// whose first-edge entry time and last-edge entry time both lie in
    /// `[t_begin, t_end]`, in suffix-range order, filtered lazily.
    pub fn strict_path_iter(&self, q: &StrictPathQuery) -> Result<StrictIter<'_>, QueryError> {
        let occurrences = self.index.occurrences(Path::new(&q.path))?;
        Ok(StrictIter {
            occurrences,
            times: &self.times,
            path_len: q.path.len(),
            t_begin: q.t_begin,
            t_end: q.t_end,
        })
    }

    /// Eagerly collect [`TemporalCinct::strict_path_iter`], sorted by
    /// `(trajectory, offset)`.
    pub fn strict_path(&self, q: &StrictPathQuery) -> Result<Vec<StrictPathMatch>, QueryError> {
        let mut out: Vec<StrictPathMatch> = self.strict_path_iter(q)?.collect();
        out.sort_unstable_by_key(|m| (m.trajectory, m.offset));
        Ok(out)
    }

    /// Total heap bytes (spatial core + directory + timestamps).
    pub fn size_in_bytes(&self) -> usize {
        self.index.core_size_in_bytes()
            + self.index.directory_size_in_bytes()
            + self.times.size_in_bytes()
    }
}

/// The temporal index is itself a [`PathQuery`] backend: spatial queries
/// delegate to the wrapped [`CinctIndex`] (which always carries SA
/// samples), so it slots into the same `QueryEngine` / bench harnesses.
impl PathQuery for TemporalCinct {
    fn text_len(&self) -> usize {
        self.index.text_len()
    }

    fn sigma(&self) -> usize {
        PathQuery::sigma(&self.index)
    }

    /// Whole-structure footprint, timestamps included (unlike the spatial
    /// index, whose accounting matches the paper's).
    fn size_in_bytes(&self) -> usize {
        TemporalCinct::size_in_bytes(self)
    }

    fn range(&self, path: &Path) -> Option<Range<usize>> {
        self.index.range(path)
    }

    fn lf_step(&self, j: usize) -> (Symbol, usize) {
        self.index.lf_step(j)
    }

    fn occurrences(&self, path: &Path) -> Result<OccurIter<'_>, QueryError> {
        self.index.occurrences(path)
    }
}

impl OccurrenceSource for TemporalCinct {
    fn resolve_row(&self, j: usize, path_len: usize) -> (usize, usize) {
        self.index.resolve_row(j, path_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Vec<TimestampedTrajectory> {
        vec![
            TimestampedTrajectory {
                edges: vec![0, 1, 4, 5],
                times: vec![100, 110, 125, 140],
            },
            TimestampedTrajectory {
                edges: vec![0, 1, 2],
                times: vec![200, 215, 230],
            },
            TimestampedTrajectory {
                edges: vec![1, 2],
                times: vec![50, 60],
            },
            TimestampedTrajectory {
                edges: vec![0, 3],
                times: vec![300, 310],
            },
        ]
    }

    #[test]
    fn strict_path_filters_by_time() {
        let t = TemporalCinct::build(&sample_data(), 6, 2).unwrap();
        // Path A→B (edges 0,1) is traveled by trajectories 0 (t 100..110)
        // and 1 (t 200..215).
        let all = t
            .strict_path(&StrictPathQuery {
                path: vec![0, 1],
                t_begin: 0,
                t_end: 1000,
            })
            .unwrap();
        assert_eq!(all.len(), 2);
        let early = t
            .strict_path(&StrictPathQuery {
                path: vec![0, 1],
                t_begin: 0,
                t_end: 150,
            })
            .unwrap();
        assert_eq!(early.len(), 1);
        assert_eq!(early[0].trajectory, 0);
        assert_eq!(early[0].t_enter, 100);
        assert_eq!(early[0].t_exit, 110);
        // Window covering neither.
        let none = t
            .strict_path(&StrictPathQuery {
                path: vec![0, 1],
                t_begin: 111,
                t_end: 199,
            })
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn interval_boundaries_are_inclusive() {
        let t = TemporalCinct::build(&sample_data(), 6, 2).unwrap();
        let exact = t
            .strict_path(&StrictPathQuery {
                path: vec![0, 1],
                t_begin: 100,
                t_end: 110,
            })
            .unwrap();
        assert_eq!(exact.len(), 1);
    }

    #[test]
    fn mid_trajectory_offsets() {
        let t = TemporalCinct::build(&sample_data(), 6, 2).unwrap();
        // Path B→C (edges 1,2) occurs mid-trajectory in 1 (offset 1,
        // t 215..230) and at the start of 2 (t 50..60).
        let m = t
            .strict_path(&StrictPathQuery {
                path: vec![1, 2],
                t_begin: 200,
                t_end: 230,
            })
            .unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].trajectory, 1);
        assert_eq!(m[0].offset, 1);
        assert_eq!(m[0].t_enter, 215);
    }

    #[test]
    fn rejects_invalid_input_with_typed_errors() {
        let bad_len = vec![TimestampedTrajectory {
            edges: vec![0, 1],
            times: vec![5],
        }];
        match TemporalCinct::build(&bad_len, 6, 2) {
            Err(QueryError::InvalidInput(msg)) => {
                assert!(msg.contains("trajectory 0"), "{msg}");
                assert!(msg.contains("length mismatch"), "{msg}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        let bad_order = vec![TimestampedTrajectory {
            edges: vec![0, 1],
            times: vec![10, 5],
        }];
        assert!(matches!(
            TemporalCinct::build(&bad_order, 6, 2),
            Err(QueryError::InvalidInput(_))
        ));
    }

    #[test]
    fn empty_path_is_a_typed_error() {
        let t = TemporalCinct::build(&sample_data(), 6, 2).unwrap();
        assert_eq!(
            t.strict_path(&StrictPathQuery {
                path: vec![],
                t_begin: 0,
                t_end: u64::MAX,
            })
            .err(),
            Some(QueryError::EmptyPattern)
        );
    }

    #[test]
    fn behaves_as_a_path_query_backend() {
        let t = TemporalCinct::build(&sample_data(), 6, 2).unwrap();
        assert_eq!(t.count(Path::new(&[0, 1])), 2);
        let occ = t.occurrences(Path::new(&[1, 2])).unwrap();
        assert_eq!(occ.collect_sorted(), vec![(1, 1), (2, 0)]);
        assert!(PathQuery::size_in_bytes(&t) > PathQuery::size_in_bytes(t.spatial()));
    }

    #[test]
    fn streaming_matches_eager() {
        let t = TemporalCinct::build(&sample_data(), 6, 2).unwrap();
        let q = StrictPathQuery {
            path: vec![0, 1],
            t_begin: 0,
            t_end: 150,
        };
        let mut streamed: Vec<StrictPathMatch> = t.strict_path_iter(&q).unwrap().collect();
        streamed.sort_unstable_by_key(|m| (m.trajectory, m.offset));
        assert_eq!(streamed, t.strict_path(&q).unwrap());
    }

    #[test]
    fn matches_brute_force() {
        let data = sample_data();
        let t = TemporalCinct::build(&data, 6, 2).unwrap();
        let queries = [
            (vec![0u32], 0u64, 1000u64),
            (vec![0], 100, 200),
            (vec![1], 0, 120),
            (vec![0, 1, 2], 0, 1000),
            (vec![0, 1, 2], 201, 1000),
            (vec![4, 5], 120, 150),
        ];
        for (path, t0, t1) in queries {
            let got = t
                .strict_path(&StrictPathQuery {
                    path: path.clone(),
                    t_begin: t0,
                    t_end: t1,
                })
                .unwrap();
            // Brute force over all trajectories and offsets.
            let mut expected = Vec::new();
            for (id, traj) in data.iter().enumerate() {
                for off in 0..traj.edges.len().saturating_sub(path.len() - 1) {
                    if traj.edges[off..off + path.len()] == path[..]
                        && traj.times[off] >= t0
                        && traj.times[off + path.len() - 1] <= t1
                    {
                        expected.push((id, off));
                    }
                }
            }
            let got_pairs: Vec<(usize, usize)> =
                got.iter().map(|m| (m.trajectory, m.offset)).collect();
            assert_eq!(got_pairs, expected, "path {path:?} [{t0},{t1}]");
        }
    }
}
