//! Plain-text trajectory I/O used by the `cinct` CLI.
//!
//! Format: one trajectory per line; edge IDs separated by commas and/or
//! whitespace; `#` starts a comment; blank lines ignored.
//!
//! Malformed input surfaces as [`QueryError::InvalidInput`] (with line
//! numbers), stream failures as [`QueryError::Io`].

use cinct_fmindex::QueryError;
use std::io::BufRead;

/// Parse trajectories from a reader. Returns the trajectories and the
/// implied edge-ID alphabet size (`max id + 1`).
pub fn parse_trajectories(reader: impl BufRead) -> Result<(Vec<Vec<u32>>, usize), QueryError> {
    let mut trajs = Vec::new();
    let mut max_edge = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut t = Vec::new();
        for tok in body.split(|c: char| c == ',' || c.is_whitespace()) {
            if tok.is_empty() {
                continue;
            }
            let e: u32 = tok.parse().map_err(|_| {
                QueryError::InvalidInput(format!("line {}: bad edge id {tok:?}", lineno + 1))
            })?;
            max_edge = max_edge.max(e);
            t.push(e);
        }
        if !t.is_empty() {
            trajs.push(t);
        }
    }
    if trajs.is_empty() {
        return Err(QueryError::InvalidInput("no trajectories in input".into()));
    }
    Ok((trajs, max_edge as usize + 1))
}

/// Parse a comma-separated edge path (`"12,13,14"`).
pub fn parse_path(spec: &str) -> Result<Vec<u32>, QueryError> {
    if spec.trim().is_empty() {
        return Err(QueryError::EmptyPattern);
    }
    let path: Result<Vec<u32>, QueryError> = spec
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<u32>()
                .map_err(|_| QueryError::InvalidInput(format!("bad edge id {t:?} in path")))
        })
        .collect();
    let path = path?;
    if path.is_empty() {
        return Err(QueryError::EmptyPattern);
    }
    Ok(path)
}

/// Render a trajectory as the CLI's comma-separated format.
pub fn format_trajectory(t: &[u32]) -> String {
    t.iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_separators_and_comments() {
        let input = "0,1, 4 5\n# full comment line\n\n0 1 2  # trailing comment\n7\n";
        let (trajs, n_edges) = parse_trajectories(input.as_bytes()).unwrap();
        assert_eq!(trajs, vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![7]]);
        assert_eq!(n_edges, 8);
    }

    #[test]
    fn rejects_bad_ids_with_line_numbers() {
        let err = parse_trajectories("0,1\n2,x,3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, QueryError::InvalidInput(_)), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("\"x\""), "{msg}");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_trajectories("# nothing\n\n".as_bytes()).is_err());
    }

    #[test]
    fn path_parsing() {
        assert_eq!(parse_path("3, 4 ,5").unwrap(), vec![3, 4, 5]);
        assert!(matches!(
            parse_path("3,,5"),
            Err(QueryError::InvalidInput(_))
        ));
        assert_eq!(parse_path(""), Err(QueryError::EmptyPattern));
    }

    #[test]
    fn format_roundtrip() {
        let t = vec![10u32, 0, 999];
        let s = format_trajectory(&t);
        assert_eq!(s, "10,0,999");
        assert_eq!(parse_path(&s).unwrap(), t);
    }
}
